//! Relationship functions (paper §3, Definition 3).
//!
//! A relationship among k functions is a function over their combined
//! inputs: `order(cid, pid) ↦ {('date': ...), ...}` (Fig. 1). If the
//! codomain is `bool` we call it a relationship *predicate*.
//!
//! Foreign keys need no separate mechanism: each parameter of a
//! relationship function carries a [`SharedDomain`], and using *the same*
//! shared domain as the participant function is the constraint (paper §3:
//! "we enforce these constraints as a side effect by simply making
//! functions share the same domains").
//!
//! Participants are not restricted to relation functions: Fig. 3 relates a
//! *database* function to a relation function (`is_accessed_by(rel_name,
//! uid)`), which classical ER modeling cannot express.

use crate::domain::{Domain, SharedDomain};
use crate::error::{FdmError, Name, Result};
use crate::function::Function;
use crate::stats::RelationshipStats;
use crate::tuple::TupleF;
use crate::value::Value;
use fdm_storage::PMap;
use std::fmt;
use std::sync::Arc;

/// One parameter of a relationship function.
#[derive(Clone)]
pub struct Participant {
    /// Name of the participating function (e.g. `"customers"`), used by
    /// FQL's schema-driven join.
    pub function: Name,
    /// The key parameter's name (e.g. `"cid"`).
    pub key: Name,
    /// The shared domain — identity with the participant's own key domain
    /// is the foreign-key link.
    pub domain: SharedDomain,
}

impl Participant {
    /// Creates a participant description.
    pub fn new(function: impl AsRef<str>, key: impl AsRef<str>, domain: SharedDomain) -> Self {
        Participant {
            function: Arc::from(function.as_ref()),
            key: Arc::from(key.as_ref()),
            domain,
        }
    }
}

/// A k-ary relationship function over shared domains.
///
/// # Examples
///
/// ```
/// use fdm_core::{Domain, Participant, RelationshipF, SharedDomain, TupleF, Value, ValueType};
///
/// let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
/// let pid = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
/// let order = RelationshipF::new("order", vec![
///     Participant::new("customers", "cid", cid),
///     Participant::new("products", "pid", pid),
/// ]);
/// let order = order.insert(
///     &[Value::Int(1), Value::Int(7)],
///     TupleF::builder("o").attr("date", "2026-01-01").build(),
/// ).unwrap();
/// assert!(order.relates(&[Value::Int(1), Value::Int(7)]));
/// assert!(!order.relates(&[Value::Int(1), Value::Int(8)]));
/// ```
#[derive(Clone)]
pub struct RelationshipF {
    name: Name,
    participants: Arc<[Participant]>,
    /// Stored entries: composite key (Value::List of the k inputs) → the
    /// relationship's own attributes (possibly an empty tuple for pure
    /// predicates).
    map: PMap<Value, Arc<TupleF>>,
    /// Cardinality/fan-out statistics, rebuilt alongside `map` by every
    /// construction and mutation path (freshness by construction — see
    /// [`crate::stats`]).
    stats: RelationshipStats,
}

impl RelationshipF {
    /// Creates an empty relationship function among the given participants.
    pub fn new(name: impl AsRef<str>, participants: Vec<Participant>) -> RelationshipF {
        let stats = RelationshipStats::empty(participants.len());
        RelationshipF {
            name: Arc::from(name.as_ref()),
            participants: participants.into(),
            map: PMap::new(),
            stats,
        }
    }

    /// Creates a relationship function in **O(n log n)** from entries whose
    /// argument lists are sorted in strictly ascending lexicographic order
    /// — the bulk-construction companion of
    /// [`RelationF::from_sorted`](crate::RelationF::from_sorted).
    /// Domain membership and arity are
    /// validated per entry exactly like [`Self::insert`]; the ordering
    /// contract is checked with a `debug_assert` only (the sort-detecting
    /// [`RelationshipBuilder`] is the usual front door). The per-position
    /// statistics are counted in the same pass.
    pub fn from_sorted(
        name: impl AsRef<str>,
        participants: Vec<Participant>,
        entries: Vec<(Vec<Value>, Arc<TupleF>)>,
    ) -> Result<RelationshipF> {
        let proto = RelationshipF::new(name, participants);
        let mut keyed: Vec<(Value, Arc<TupleF>)> = Vec::with_capacity(entries.len());
        for (args, attrs) in &entries {
            keyed.push((proto.composite_key(args)?, attrs.clone()));
        }
        debug_assert!(
            keyed.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted: argument lists must be strictly ascending"
        );
        let stats = RelationshipStats::from_entries(
            proto.participants.len(),
            entries.iter().map(|(a, _)| a.as_slice()),
        );
        Ok(RelationshipF {
            map: PMap::from_sorted_vec(keyed),
            stats,
            ..proto
        })
    }

    /// The relationship's cardinality/fan-out statistics (entry count,
    /// distinct keys per participant position) — planner input, kept
    /// current by construction.
    pub fn stats(&self) -> &RelationshipStats {
        &self.stats
    }

    /// The relationship function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The participants, in parameter order.
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Number of stored relationship entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Arity (number of participating functions).
    pub fn arity_k(&self) -> usize {
        self.participants.len()
    }

    fn composite_key(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.participants.len() {
            return Err(FdmError::ArityMismatch {
                function: self.name.to_string(),
                expected: self.participants.len(),
                found: args.len(),
            });
        }
        for (p, v) in self.participants.iter().zip(args) {
            if !p.domain.contains(v) {
                return Err(FdmError::ConstraintViolation {
                    constraint: format!(
                        "{}.{} ∈ shared domain '{}'",
                        self.name,
                        p.key,
                        p.domain.name()
                    ),
                    detail: format!("value {v} outside domain"),
                });
            }
        }
        Ok(Value::list(args.iter().cloned()))
    }

    /// Inserts a relationship entry with its own attributes. The key
    /// values must lie in the participants' shared domains.
    pub fn insert(&self, args: &[Value], attrs: TupleF) -> Result<RelationshipF> {
        let key = self.composite_key(args)?;
        if self.map.contains_key(&key) {
            return Err(FdmError::DuplicateKey {
                relation: self.name.to_string(),
                key: key.to_string(),
            });
        }
        Ok(RelationshipF {
            name: self.name.clone(),
            participants: self.participants.clone(),
            map: self.map.insert(key, Arc::new(attrs)).0,
            stats: self.stats.with_inserted(args),
        })
    }

    /// Inserts a pure-predicate entry (no attributes of its own).
    pub fn insert_link(&self, args: &[Value]) -> Result<RelationshipF> {
        self.insert(args, TupleF::builder(format!("{}_link", self.name)).build())
    }

    /// Removes a relationship entry.
    pub fn remove(&self, args: &[Value]) -> Result<RelationshipF> {
        let key = self.composite_key(args)?;
        let (map, old) = self.map.remove(&key);
        if old.is_none() {
            return Err(FdmError::Undefined {
                function: self.name.to_string(),
                input: key.to_string(),
            });
        }
        Ok(RelationshipF {
            name: self.name.clone(),
            participants: self.participants.clone(),
            map,
            stats: self.stats.with_removed(args),
        })
    }

    /// The relationship **predicate** (paper Def. 3 with `Y == bool`):
    /// does a relationship exist among these inputs?
    pub fn relates(&self, args: &[Value]) -> bool {
        match self.composite_key(args) {
            Ok(key) => self.map.contains_key(&key),
            Err(_) => false,
        }
    }

    /// The relationship's own attributes for the given inputs.
    pub fn attrs(&self, args: &[Value]) -> Option<Arc<TupleF>> {
        let key = self.composite_key(args).ok()?;
        self.map.get(&key).cloned()
    }

    /// Iterates all `(arg-list, attrs)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<Value>, Arc<TupleF>)> + '_ {
        self.map.iter().map(|(k, t)| {
            let args = match k {
                Value::List(items) => items.to_vec(),
                other => vec![other.clone()],
            };
            (args, t.clone())
        })
    }

    /// Non-materializing variant of [`Self::iter`]: yields each entry's
    /// argument slice and attribute tuple **by reference**, with no
    /// per-entry allocation or clone. This is the bulk-operator fast path
    /// (FQL's join walks every entry of a relationship exactly once).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&[Value], &Arc<TupleF>)> + '_ {
        self.map.iter().map(|(k, t)| {
            let args: &[Value] = match k {
                Value::List(items) => items,
                other => std::slice::from_ref(other),
            };
            (args, t)
        })
    }

    /// All distinct values appearing in parameter position `i` — the image
    /// of the relationship on that participant (used by FQL's semi-join
    /// reduction).
    pub fn key_values_at(&self, i: usize) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .map
            .keys()
            .filter_map(|k| match k {
                Value::List(items) => items.get(i).cloned(),
                other if i == 0 => Some(other.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Finds the parameter position of a participant by its key name.
    pub fn position_of(&self, key_name: &str) -> Option<usize> {
        self.participants
            .iter()
            .position(|p| p.key.as_ref() == key_name)
    }

    /// Converts the relationship into a plain relation function whose
    /// tuples carry the key attributes inline (useful to hand to operators
    /// that expect relation functions).
    pub fn to_relation(&self) -> crate::relation::RelationF {
        let key_names: Vec<&str> = self.participants.iter().map(|p| p.key.as_ref()).collect();
        let mut rel = crate::relation::RelationF::new(self.name.as_ref(), &key_names);
        for (args, attrs) in self.iter() {
            let mut t = TupleF::builder(format!("{}_t", self.name));
            for (p, v) in self.participants.iter().zip(&args) {
                t = t.attr(p.key.as_ref(), v.clone());
            }
            let mut tuple = t.build();
            // splice in the relationship's own attributes
            for (n, v) in attrs.materialize().unwrap_or_default() {
                tuple = tuple.with_attr(n.as_ref(), v);
            }
            rel = rel
                .insert(Value::list(args.clone()), tuple)
                .expect("keys unique by construction");
        }
        rel
    }
}

/// Accumulates relationship entries and bulk-builds a [`RelationshipF`] —
/// the relationship-side companion of
/// [`RelationBuilder`](crate::RelationBuilder), closing the bulk-load
/// story: loaders (`workload::to_fdm`-style ingest) push every entry, the
/// builder validates domains/arity on push, detects already-sorted input,
/// sorts once otherwise, and assembles the persistent map in O(n) with the
/// statistics counted in the same pass — instead of n persistent inserts
/// each paying O(log n) tree and stats updates.
///
/// Duplicate composite keys fail [`RelationshipBuilder::build`] with
/// exactly the [`FdmError::DuplicateKey`] the insert loop would raise.
///
/// # Examples
///
/// ```
/// use fdm_core::{Domain, Participant, RelationshipBuilder, SharedDomain, TupleF, Value, ValueType};
///
/// let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
/// let pid = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
/// let mut b = RelationshipBuilder::new("order", vec![
///     Participant::new("customers", "cid", cid),
///     Participant::new("products", "pid", pid),
/// ]);
/// b.push(&[Value::Int(1), Value::Int(7)], TupleF::builder("o").attr("q", 2).build()).unwrap();
/// b.push(&[Value::Int(1), Value::Int(9)], TupleF::builder("o").attr("q", 1).build()).unwrap();
/// let order = b.build().unwrap();
/// assert_eq!(order.len(), 2);
/// assert!(order.relates(&[Value::Int(1), Value::Int(9)]));
/// ```
pub struct RelationshipBuilder {
    proto: RelationshipF,
    entries: Vec<(Value, Arc<TupleF>)>,
    /// `true` while pushed composite keys have been strictly ascending.
    sorted: bool,
    /// The shared empty attribute tuple [`Self::push_link`] entries reuse
    /// (every link tuple is identical, so one allocation serves them all).
    link_tuple: Option<Arc<TupleF>>,
}

impl RelationshipBuilder {
    /// Starts an empty builder for a relationship named `name` among the
    /// given participants.
    pub fn new(name: impl AsRef<str>, participants: Vec<Participant>) -> RelationshipBuilder {
        RelationshipBuilder {
            proto: RelationshipF::new(name, participants),
            entries: Vec::new(),
            sorted: true,
            link_tuple: None,
        }
    }

    /// Pre-allocates room for `n` entries.
    pub fn with_capacity(mut self, n: usize) -> RelationshipBuilder {
        self.entries.reserve(n);
        self
    }

    /// Appends an entry with its own attributes. Arity and shared-domain
    /// membership are validated now, with the same errors as
    /// [`RelationshipF::insert`]; duplicate detection is deferred to
    /// [`Self::build`].
    pub fn push(&mut self, args: &[Value], attrs: TupleF) -> Result<()> {
        self.push_arc(args, Arc::new(attrs))
    }

    /// [`Self::push`] taking an already-shared attribute tuple.
    pub fn push_arc(&mut self, args: &[Value], attrs: Arc<TupleF>) -> Result<()> {
        let key = self.proto.composite_key(args)?;
        if self.sorted {
            if let Some((last, _)) = self.entries.last() {
                if *last >= key {
                    self.sorted = false;
                }
            }
        }
        self.entries.push((key, attrs));
        Ok(())
    }

    /// Appends a pure-predicate entry (no attributes of its own). All
    /// link entries share one empty tuple.
    pub fn push_link(&mut self, args: &[Value]) -> Result<()> {
        let tuple = self
            .link_tuple
            .get_or_insert_with(|| {
                Arc::new(TupleF::builder(format!("{}_link", self.proto.name)).build())
            })
            .clone();
        self.push_arc(args, tuple)
    }

    /// Number of entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bulk-builds the relationship: sorts if the input arrived out of
    /// order, rejects duplicate composite keys, assembles the tree in O(n),
    /// and counts the statistics in one pass.
    pub fn build(self) -> Result<RelationshipF> {
        let RelationshipBuilder {
            proto,
            mut entries,
            sorted,
            ..
        } = self;
        if !sorted {
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            if let Some(w) = entries.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(FdmError::DuplicateKey {
                    relation: proto.name.to_string(),
                    key: w[0].0.to_string(),
                });
            }
        }
        let stats = RelationshipStats::from_entries(
            proto.participants.len(),
            entries.iter().map(|(k, _)| match k {
                Value::List(items) => &items[..],
                other => std::slice::from_ref(other),
            }),
        );
        Ok(RelationshipF {
            map: PMap::from_sorted_vec(entries),
            stats,
            ..proto
        })
    }
}

impl Function for RelationshipF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        self.participants.len()
    }

    fn domain(&self) -> Domain {
        Domain::Product(
            self.participants
                .iter()
                .map(|p| p.domain.domain().clone())
                .collect(),
        )
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        let key = self.composite_key(args)?;
        match self.map.get(&key) {
            Some(t) => Ok(Value::Fn(crate::function::FnValue::Tuple(t.clone()))),
            None => Err(FdmError::Undefined {
                function: self.name.to_string(),
                input: key.to_string(),
            }),
        }
    }
}

impl fmt::Debug for RelationshipF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelationshipF({}(", self.name)?;
        for (i, p) in self.participants.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p.key)?;
        }
        write!(f, "), {} entries)", self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValueType;

    fn shared(name: &str) -> SharedDomain {
        SharedDomain::new(name, Domain::Typed(ValueType::Int))
    }

    fn order() -> RelationshipF {
        RelationshipF::new(
            "order",
            vec![
                Participant::new("customers", "cid", shared("cid")),
                Participant::new("products", "pid", shared("pid")),
            ],
        )
    }

    #[test]
    fn fig1_order_relationship() {
        let o = order()
            .insert(
                &[Value::Int(1), Value::Int(7)],
                TupleF::builder("o").attr("date", "2026-01-01").build(),
            )
            .unwrap();
        assert!(o.relates(&[Value::Int(1), Value::Int(7)]));
        assert!(!o.relates(&[Value::Int(2), Value::Int(7)]));
        assert_eq!(
            o.attrs(&[Value::Int(1), Value::Int(7)])
                .unwrap()
                .get("date")
                .unwrap(),
            Value::str("2026-01-01")
        );
    }

    #[test]
    fn shared_domain_rejects_out_of_domain_keys() {
        let cid = SharedDomain::new("cid", Domain::enumerated([Value::Int(1), Value::Int(2)]));
        let pid = shared("pid");
        let o = RelationshipF::new(
            "order",
            vec![
                Participant::new("customers", "cid", cid),
                Participant::new("products", "pid", pid),
            ],
        );
        // cid=9 is not in the shared domain — the FK constraint, enforced
        // as a side effect of domain sharing.
        let err = o.insert_link(&[Value::Int(9), Value::Int(7)]).unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
        assert!(o.insert_link(&[Value::Int(2), Value::Int(7)]).is_ok());
    }

    #[test]
    fn arity_is_checked() {
        let o = order();
        let err = o.insert_link(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, FdmError::ArityMismatch { .. }));
        assert!(!o.relates(&[Value::Int(1)]));
    }

    #[test]
    fn duplicate_relationship_entry_rejected() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap();
        let err = o.insert_link(&[Value::Int(1), Value::Int(7)]).unwrap_err();
        assert!(matches!(err, FdmError::DuplicateKey { .. }));
    }

    #[test]
    fn remove_and_persistence() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap();
        let o2 = o.remove(&[Value::Int(1), Value::Int(7)]).unwrap();
        assert!(
            o.relates(&[Value::Int(1), Value::Int(7)]),
            "snapshot intact"
        );
        assert!(!o2.relates(&[Value::Int(1), Value::Int(7)]));
        assert!(o2.remove(&[Value::Int(1), Value::Int(7)]).is_err());
    }

    #[test]
    fn key_values_at_deduplicates() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap()
            .insert_link(&[Value::Int(1), Value::Int(8)])
            .unwrap()
            .insert_link(&[Value::Int(2), Value::Int(7)])
            .unwrap();
        assert_eq!(o.key_values_at(0), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(o.key_values_at(1), vec![Value::Int(7), Value::Int(8)]);
        assert_eq!(o.position_of("pid"), Some(1));
        assert_eq!(o.position_of("nope"), None);
    }

    #[test]
    fn to_relation_inlines_keys_and_attrs() {
        let o = order()
            .insert(
                &[Value::Int(1), Value::Int(7)],
                TupleF::builder("o").attr("date", "2026-05-01").build(),
            )
            .unwrap();
        let rel = o.to_relation();
        assert_eq!(rel.len(), 1);
        let (_, t) = rel.tuples().unwrap().pop().unwrap();
        assert_eq!(t.get("cid").unwrap(), Value::Int(1));
        assert_eq!(t.get("pid").unwrap(), Value::Int(7));
        assert_eq!(t.get("date").unwrap(), Value::str("2026-05-01"));
    }

    #[test]
    fn from_sorted_equals_insert_loop() {
        let entries: Vec<(Vec<Value>, Arc<TupleF>)> = (0..40)
            .map(|i| {
                (
                    vec![Value::Int(i / 4), Value::Int(i % 4)],
                    Arc::new(TupleF::builder("o").attr("n", i).build()),
                )
            })
            .collect();
        let participants = order().participants().to_vec();
        let bulk =
            RelationshipF::from_sorted("order", participants.clone(), entries.clone()).unwrap();
        let mut reference = RelationshipF::new("order", participants);
        for (args, attrs) in &entries {
            reference = reference.insert(args, (**attrs).clone()).unwrap();
        }
        assert_eq!(bulk.len(), reference.len());
        for ((a_args, a_t), (b_args, b_t)) in bulk.iter().zip(reference.iter()) {
            assert_eq!(a_args, b_args);
            assert!(a_t.eq_data(&b_t));
        }
        // statistics match the incremental path too
        assert_eq!(bulk.stats().entries(), reference.stats().entries());
        for pos in 0..2 {
            assert_eq!(bulk.stats().distinct(pos), reference.stats().distinct(pos));
        }
        // bulk-built relationships are first-class: point ops still work
        let bulk2 = bulk.remove(&[Value::Int(0), Value::Int(0)]).unwrap();
        assert_eq!(bulk2.len(), 39);
    }

    #[test]
    fn builder_sorts_validates_and_rejects_duplicates() {
        // unsorted pushes: the builder sorts once at build
        let mut b = RelationshipBuilder::new("order", order().participants().to_vec());
        b.push_link(&[Value::Int(2), Value::Int(7)]).unwrap();
        b.push_link(&[Value::Int(1), Value::Int(9)]).unwrap();
        b.push_link(&[Value::Int(1), Value::Int(7)]).unwrap();
        assert_eq!(b.len(), 3);
        let o = b.build().unwrap();
        assert_eq!(o.len(), 3);
        assert!(o.relates(&[Value::Int(1), Value::Int(9)]));
        assert_eq!(o.stats().distinct(0), 2);
        assert_eq!(o.stats().distinct(1), 2);

        // duplicate composite key: same error as the insert loop
        let mut b = RelationshipBuilder::new("order", order().participants().to_vec());
        b.push_link(&[Value::Int(2), Value::Int(7)]).unwrap();
        b.push_link(&[Value::Int(1), Value::Int(7)]).unwrap();
        b.push_link(&[Value::Int(2), Value::Int(7)]).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, FdmError::DuplicateKey { .. }));

        // arity and domain failures surface at push, like insert
        let mut b = RelationshipBuilder::new("order", order().participants().to_vec());
        assert!(matches!(
            b.push_link(&[Value::Int(1)]).unwrap_err(),
            FdmError::ArityMismatch { .. }
        ));
        assert!(matches!(
            b.push_link(&[Value::str("x"), Value::Int(7)]).unwrap_err(),
            FdmError::ConstraintViolation { .. }
        ));
    }

    #[test]
    fn stats_track_every_mutation_path() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap()
            .insert_link(&[Value::Int(1), Value::Int(8)])
            .unwrap()
            .insert_link(&[Value::Int(2), Value::Int(7)])
            .unwrap();
        assert_eq!(o.stats().entries(), 3);
        assert_eq!(o.stats().distinct(0), 2, "cids 1, 2");
        assert_eq!(o.stats().distinct(1), 2, "pids 7, 8");
        assert!((o.stats().avg_fanout(0) - 1.5).abs() < 1e-12);
        let o2 = o.remove(&[Value::Int(2), Value::Int(7)]).unwrap();
        assert_eq!(o2.stats().entries(), 2);
        assert_eq!(o2.stats().distinct(0), 1);
        // persistence: the snapshot's stats are untouched
        assert_eq!(o.stats().entries(), 3);
    }

    #[test]
    fn function_interface_k_ary() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap();
        assert_eq!(o.arity(), 2);
        let v = o.apply(&[Value::Int(1), Value::Int(7)]).unwrap();
        assert!(matches!(v, Value::Fn(_)));
        assert!(o.apply(&[Value::Int(5), Value::Int(5)]).is_err());
        assert!(matches!(o.domain(), Domain::Product(ds) if ds.len() == 2));
    }
}
