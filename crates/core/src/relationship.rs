//! Relationship functions (paper §3, Definition 3).
//!
//! A relationship among k functions is a function over their combined
//! inputs: `order(cid, pid) ↦ {('date': ...), ...}` (Fig. 1). If the
//! codomain is `bool` we call it a relationship *predicate*.
//!
//! Foreign keys need no separate mechanism: each parameter of a
//! relationship function carries a [`SharedDomain`], and using *the same*
//! shared domain as the participant function is the constraint (paper §3:
//! "we enforce these constraints as a side effect by simply making
//! functions share the same domains").
//!
//! Participants are not restricted to relation functions: Fig. 3 relates a
//! *database* function to a relation function (`is_accessed_by(rel_name,
//! uid)`), which classical ER modeling cannot express.

use crate::domain::{Domain, SharedDomain};
use crate::error::{FdmError, Name, Result};
use crate::function::Function;
use crate::tuple::TupleF;
use crate::value::Value;
use fdm_storage::PMap;
use std::fmt;
use std::sync::Arc;

/// One parameter of a relationship function.
#[derive(Clone)]
pub struct Participant {
    /// Name of the participating function (e.g. `"customers"`), used by
    /// FQL's schema-driven join.
    pub function: Name,
    /// The key parameter's name (e.g. `"cid"`).
    pub key: Name,
    /// The shared domain — identity with the participant's own key domain
    /// is the foreign-key link.
    pub domain: SharedDomain,
}

impl Participant {
    /// Creates a participant description.
    pub fn new(function: impl AsRef<str>, key: impl AsRef<str>, domain: SharedDomain) -> Self {
        Participant {
            function: Arc::from(function.as_ref()),
            key: Arc::from(key.as_ref()),
            domain,
        }
    }
}

/// A k-ary relationship function over shared domains.
///
/// # Examples
///
/// ```
/// use fdm_core::{Domain, Participant, RelationshipF, SharedDomain, TupleF, Value, ValueType};
///
/// let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
/// let pid = SharedDomain::new("pid", Domain::Typed(ValueType::Int));
/// let order = RelationshipF::new("order", vec![
///     Participant::new("customers", "cid", cid),
///     Participant::new("products", "pid", pid),
/// ]);
/// let order = order.insert(
///     &[Value::Int(1), Value::Int(7)],
///     TupleF::builder("o").attr("date", "2026-01-01").build(),
/// ).unwrap();
/// assert!(order.relates(&[Value::Int(1), Value::Int(7)]));
/// assert!(!order.relates(&[Value::Int(1), Value::Int(8)]));
/// ```
#[derive(Clone)]
pub struct RelationshipF {
    name: Name,
    participants: Arc<[Participant]>,
    /// Stored entries: composite key (Value::List of the k inputs) → the
    /// relationship's own attributes (possibly an empty tuple for pure
    /// predicates).
    map: PMap<Value, Arc<TupleF>>,
}

impl RelationshipF {
    /// Creates an empty relationship function among the given participants.
    pub fn new(name: impl AsRef<str>, participants: Vec<Participant>) -> RelationshipF {
        RelationshipF {
            name: Arc::from(name.as_ref()),
            participants: participants.into(),
            map: PMap::new(),
        }
    }

    /// The relationship function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The participants, in parameter order.
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Number of stored relationship entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Arity (number of participating functions).
    pub fn arity_k(&self) -> usize {
        self.participants.len()
    }

    fn composite_key(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.participants.len() {
            return Err(FdmError::ArityMismatch {
                function: self.name.to_string(),
                expected: self.participants.len(),
                found: args.len(),
            });
        }
        for (p, v) in self.participants.iter().zip(args) {
            if !p.domain.contains(v) {
                return Err(FdmError::ConstraintViolation {
                    constraint: format!(
                        "{}.{} ∈ shared domain '{}'",
                        self.name,
                        p.key,
                        p.domain.name()
                    ),
                    detail: format!("value {v} outside domain"),
                });
            }
        }
        Ok(Value::list(args.iter().cloned()))
    }

    /// Inserts a relationship entry with its own attributes. The key
    /// values must lie in the participants' shared domains.
    pub fn insert(&self, args: &[Value], attrs: TupleF) -> Result<RelationshipF> {
        let key = self.composite_key(args)?;
        if self.map.contains_key(&key) {
            return Err(FdmError::DuplicateKey {
                relation: self.name.to_string(),
                key: key.to_string(),
            });
        }
        Ok(RelationshipF {
            name: self.name.clone(),
            participants: self.participants.clone(),
            map: self.map.insert(key, Arc::new(attrs)).0,
        })
    }

    /// Inserts a pure-predicate entry (no attributes of its own).
    pub fn insert_link(&self, args: &[Value]) -> Result<RelationshipF> {
        self.insert(args, TupleF::builder(format!("{}_link", self.name)).build())
    }

    /// Removes a relationship entry.
    pub fn remove(&self, args: &[Value]) -> Result<RelationshipF> {
        let key = self.composite_key(args)?;
        let (map, old) = self.map.remove(&key);
        if old.is_none() {
            return Err(FdmError::Undefined {
                function: self.name.to_string(),
                input: key.to_string(),
            });
        }
        Ok(RelationshipF {
            name: self.name.clone(),
            participants: self.participants.clone(),
            map,
        })
    }

    /// The relationship **predicate** (paper Def. 3 with `Y == bool`):
    /// does a relationship exist among these inputs?
    pub fn relates(&self, args: &[Value]) -> bool {
        match self.composite_key(args) {
            Ok(key) => self.map.contains_key(&key),
            Err(_) => false,
        }
    }

    /// The relationship's own attributes for the given inputs.
    pub fn attrs(&self, args: &[Value]) -> Option<Arc<TupleF>> {
        let key = self.composite_key(args).ok()?;
        self.map.get(&key).cloned()
    }

    /// Iterates all `(arg-list, attrs)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<Value>, Arc<TupleF>)> + '_ {
        self.map.iter().map(|(k, t)| {
            let args = match k {
                Value::List(items) => items.to_vec(),
                other => vec![other.clone()],
            };
            (args, t.clone())
        })
    }

    /// Non-materializing variant of [`Self::iter`]: yields each entry's
    /// argument slice and attribute tuple **by reference**, with no
    /// per-entry allocation or clone. This is the bulk-operator fast path
    /// (FQL's join walks every entry of a relationship exactly once).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&[Value], &Arc<TupleF>)> + '_ {
        self.map.iter().map(|(k, t)| {
            let args: &[Value] = match k {
                Value::List(items) => items,
                other => std::slice::from_ref(other),
            };
            (args, t)
        })
    }

    /// All distinct values appearing in parameter position `i` — the image
    /// of the relationship on that participant (used by FQL's semi-join
    /// reduction).
    pub fn key_values_at(&self, i: usize) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .map
            .keys()
            .filter_map(|k| match k {
                Value::List(items) => items.get(i).cloned(),
                other if i == 0 => Some(other.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Finds the parameter position of a participant by its key name.
    pub fn position_of(&self, key_name: &str) -> Option<usize> {
        self.participants
            .iter()
            .position(|p| p.key.as_ref() == key_name)
    }

    /// Converts the relationship into a plain relation function whose
    /// tuples carry the key attributes inline (useful to hand to operators
    /// that expect relation functions).
    pub fn to_relation(&self) -> crate::relation::RelationF {
        let key_names: Vec<&str> = self.participants.iter().map(|p| p.key.as_ref()).collect();
        let mut rel = crate::relation::RelationF::new(self.name.as_ref(), &key_names);
        for (args, attrs) in self.iter() {
            let mut t = TupleF::builder(format!("{}_t", self.name));
            for (p, v) in self.participants.iter().zip(&args) {
                t = t.attr(p.key.as_ref(), v.clone());
            }
            let mut tuple = t.build();
            // splice in the relationship's own attributes
            for (n, v) in attrs.materialize().unwrap_or_default() {
                tuple = tuple.with_attr(n.as_ref(), v);
            }
            rel = rel
                .insert(Value::list(args.clone()), tuple)
                .expect("keys unique by construction");
        }
        rel
    }
}

impl Function for RelationshipF {
    fn fn_name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        self.participants.len()
    }

    fn domain(&self) -> Domain {
        Domain::Product(
            self.participants
                .iter()
                .map(|p| p.domain.domain().clone())
                .collect(),
        )
    }

    fn apply(&self, args: &[Value]) -> Result<Value> {
        let key = self.composite_key(args)?;
        match self.map.get(&key) {
            Some(t) => Ok(Value::Fn(crate::function::FnValue::Tuple(t.clone()))),
            None => Err(FdmError::Undefined {
                function: self.name.to_string(),
                input: key.to_string(),
            }),
        }
    }
}

impl fmt::Debug for RelationshipF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelationshipF({}(", self.name)?;
        for (i, p) in self.participants.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p.key)?;
        }
        write!(f, "), {} entries)", self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValueType;

    fn shared(name: &str) -> SharedDomain {
        SharedDomain::new(name, Domain::Typed(ValueType::Int))
    }

    fn order() -> RelationshipF {
        RelationshipF::new(
            "order",
            vec![
                Participant::new("customers", "cid", shared("cid")),
                Participant::new("products", "pid", shared("pid")),
            ],
        )
    }

    #[test]
    fn fig1_order_relationship() {
        let o = order()
            .insert(
                &[Value::Int(1), Value::Int(7)],
                TupleF::builder("o").attr("date", "2026-01-01").build(),
            )
            .unwrap();
        assert!(o.relates(&[Value::Int(1), Value::Int(7)]));
        assert!(!o.relates(&[Value::Int(2), Value::Int(7)]));
        assert_eq!(
            o.attrs(&[Value::Int(1), Value::Int(7)])
                .unwrap()
                .get("date")
                .unwrap(),
            Value::str("2026-01-01")
        );
    }

    #[test]
    fn shared_domain_rejects_out_of_domain_keys() {
        let cid = SharedDomain::new("cid", Domain::enumerated([Value::Int(1), Value::Int(2)]));
        let pid = shared("pid");
        let o = RelationshipF::new(
            "order",
            vec![
                Participant::new("customers", "cid", cid),
                Participant::new("products", "pid", pid),
            ],
        );
        // cid=9 is not in the shared domain — the FK constraint, enforced
        // as a side effect of domain sharing.
        let err = o.insert_link(&[Value::Int(9), Value::Int(7)]).unwrap_err();
        assert!(matches!(err, FdmError::ConstraintViolation { .. }));
        assert!(o.insert_link(&[Value::Int(2), Value::Int(7)]).is_ok());
    }

    #[test]
    fn arity_is_checked() {
        let o = order();
        let err = o.insert_link(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, FdmError::ArityMismatch { .. }));
        assert!(!o.relates(&[Value::Int(1)]));
    }

    #[test]
    fn duplicate_relationship_entry_rejected() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap();
        let err = o.insert_link(&[Value::Int(1), Value::Int(7)]).unwrap_err();
        assert!(matches!(err, FdmError::DuplicateKey { .. }));
    }

    #[test]
    fn remove_and_persistence() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap();
        let o2 = o.remove(&[Value::Int(1), Value::Int(7)]).unwrap();
        assert!(
            o.relates(&[Value::Int(1), Value::Int(7)]),
            "snapshot intact"
        );
        assert!(!o2.relates(&[Value::Int(1), Value::Int(7)]));
        assert!(o2.remove(&[Value::Int(1), Value::Int(7)]).is_err());
    }

    #[test]
    fn key_values_at_deduplicates() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap()
            .insert_link(&[Value::Int(1), Value::Int(8)])
            .unwrap()
            .insert_link(&[Value::Int(2), Value::Int(7)])
            .unwrap();
        assert_eq!(o.key_values_at(0), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(o.key_values_at(1), vec![Value::Int(7), Value::Int(8)]);
        assert_eq!(o.position_of("pid"), Some(1));
        assert_eq!(o.position_of("nope"), None);
    }

    #[test]
    fn to_relation_inlines_keys_and_attrs() {
        let o = order()
            .insert(
                &[Value::Int(1), Value::Int(7)],
                TupleF::builder("o").attr("date", "2026-05-01").build(),
            )
            .unwrap();
        let rel = o.to_relation();
        assert_eq!(rel.len(), 1);
        let (_, t) = rel.tuples().unwrap().pop().unwrap();
        assert_eq!(t.get("cid").unwrap(), Value::Int(1));
        assert_eq!(t.get("pid").unwrap(), Value::Int(7));
        assert_eq!(t.get("date").unwrap(), Value::str("2026-05-01"));
    }

    #[test]
    fn function_interface_k_ary() {
        let o = order()
            .insert_link(&[Value::Int(1), Value::Int(7)])
            .unwrap();
        assert_eq!(o.arity(), 2);
        let v = o.apply(&[Value::Int(1), Value::Int(7)]).unwrap();
        assert!(matches!(v, Value::Fn(_)));
        assert!(o.apply(&[Value::Int(5), Value::Int(5)]).is_err());
        assert!(matches!(o.domain(), Domain::Product(ds) if ds.len() == 2));
    }
}
