//! Key-range sharding of relation functions — the serving layer's scale
//! primitive.
//!
//! A [`ShardMap`] splits a relation's key space into contiguous ranges at
//! explicit boundary keys; a [`ShardedRelation`] holds one stored
//! [`RelationF`] per range plus the map that routes keys to shards.
//! Everything stays persistent (a "mutation" rebuilds exactly one shard
//! and shares the rest), and everything stays a plain relation function
//! per shard, so the PR 2 parallel operators, the bulk builders, and the
//! FQL operators all work unchanged *inside* a shard.
//!
//! # Routing contract
//!
//! Boundaries are strictly ascending and each boundary key is the **first
//! key of the shard to its right**: with boundaries `[b0, b1]`, shard 0
//! holds keys `< b0`, shard 1 holds `[b0, b1)`, shard 2 holds `>= b1`.
//! A key exactly equal to a boundary therefore routes to the
//! higher-indexed shard — pinned by tests here and by the shard-boundary
//! proptest in the integration suite, because an off-by-one at a boundary
//! is precisely the bug a differential oracle exists to catch.
//!
//! Because shards partition the key space in key order, concatenating the
//! shards' (key-sorted) entries in shard order *is* the global key order:
//! range scans concatenate per-shard range scans, and
//! [`ShardedRelation::to_relation`] is a single O(n) `from_sorted` build.
//! The sharded ≡ unsharded equivalence this implies is the module's
//! correctness bar, enforced by `tests/tests/shard_equivalence.rs`.
//!
//! Shards store plain unique bodies (the serving layout); constraints and
//! computed bodies stay on the unsharded source relation — shard before
//! serving, after constraint enforcement.

use crate::error::{FdmError, Name, Result};
use crate::par::{par_map_chunks, ParConfig};
use crate::relation::{RelationBuilder, RelationF};
use crate::tuple::TupleF;
use crate::value::Value;
use std::sync::Arc;

/// Routes keys to shard indexes by key range (see the module docs for the
/// boundary contract).
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Strictly ascending boundary keys; `boundaries[i]` is the first key
    /// of shard `i + 1`.
    boundaries: Arc<[Value]>,
}

impl ShardMap {
    /// A map with the given boundary keys — shard count is
    /// `boundaries.len() + 1`. An empty boundary list is the degenerate
    /// single-shard map. Boundaries must be strictly ascending.
    pub fn new(boundaries: Vec<Value>) -> Result<ShardMap> {
        if let Some(w) = boundaries.windows(2).find(|w| w[0] >= w[1]) {
            return Err(FdmError::ConstraintViolation {
                constraint: "shard boundaries strictly ascending".to_string(),
                detail: format!("boundary {} does not precede {}", w[0], w[1]),
            });
        }
        Ok(ShardMap {
            boundaries: boundaries.into(),
        })
    }

    /// The single-shard map (no boundaries): every key routes to shard 0.
    pub fn single() -> ShardMap {
        ShardMap {
            boundaries: Arc::from([]),
        }
    }

    /// Picks `shards - 1` boundaries at even rank positions of `rel`'s
    /// stored keys, so the shards carry near-equal entry counts for the
    /// current data. Falls back to fewer shards (down to one) when the
    /// relation has fewer distinct keys than requested shards.
    pub fn for_relation(rel: &RelationF, shards: usize) -> Result<ShardMap> {
        let keys = rel.stored_keys();
        let shards = shards.max(1).min(keys.len().max(1));
        let mut boundaries = Vec::with_capacity(shards - 1);
        for i in 1..shards {
            // rank of the first key of shard i under an even split
            boundaries.push(keys[i * keys.len() / shards].clone());
        }
        boundaries.dedup();
        ShardMap::new(boundaries)
    }

    /// Number of shards this map routes into.
    pub fn shard_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The boundary keys (strictly ascending; `boundaries()[i]` is the
    /// first key of shard `i + 1`).
    pub fn boundaries(&self) -> &[Value] {
        &self.boundaries
    }

    /// The shard index `key` routes to: the number of boundaries `<= key`,
    /// so a key equal to a boundary goes to the shard *right* of it.
    pub fn route(&self, key: &Value) -> usize {
        self.boundaries.partition_point(|b| b <= key)
    }

    /// The inclusive shard-index span a `[lo, hi]` range scan must visit
    /// (either bound optional, meaning unbounded on that side).
    pub fn route_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> (usize, usize) {
        let first = lo.map_or(0, |k| self.route(k));
        let last = hi.map_or(self.shard_count() - 1, |k| self.route(k));
        (first, last)
    }
}

/// A relation function partitioned by key range into per-shard stored
/// relations (see the module docs).
#[derive(Clone)]
pub struct ShardedRelation {
    map: ShardMap,
    /// One stored relation per shard, in key-range order; every shard
    /// carries the source relation's name and key attributes.
    shards: Arc<[RelationF]>,
}

impl ShardedRelation {
    /// Partitions a stored relation under `map`. One key-ordered pass:
    /// routing an ascending key stream just advances the shard cursor, so
    /// the split is O(n) with one comparison per boundary crossing; the
    /// per-shard O(len) tree builds run in parallel when the relation
    /// clears the [`ParConfig`] cutoff.
    pub fn from_relation(rel: &RelationF, map: ShardMap) -> Result<ShardedRelation> {
        let mut buckets: Vec<Vec<(Value, Arc<TupleF>)>> = vec![Vec::new(); map.shard_count()];
        let mut shard = 0usize;
        for (key, tuple) in rel.iter_stored() {
            // ascending keys: the route index is monotone
            while shard + 1 < buckets.len() && map.boundaries()[shard] <= key {
                shard += 1;
            }
            debug_assert_eq!(shard, map.route(&key), "monotone routing");
            buckets[shard].push((key, tuple));
        }
        Self::from_buckets(rel.name(), rel.key_attrs(), map, buckets, rel.len())
    }

    /// Bulk-loads a sharded relation from unsorted entries: each entry is
    /// routed to its bucket, then every shard bulk-builds through the
    /// sort-detecting [`RelationBuilder`] — in parallel across shards
    /// above the cutoff. A duplicate key is reported with exactly the
    /// sequential builder's error (duplicates always route to the same
    /// shard, so none can hide across a boundary).
    pub fn build(
        name: impl AsRef<str>,
        key_attrs: &[&str],
        map: ShardMap,
        entries: Vec<(Value, Arc<TupleF>)>,
    ) -> Result<ShardedRelation> {
        let total = entries.len();
        let mut buckets: Vec<Vec<(Value, Arc<TupleF>)>> = vec![Vec::new(); map.shard_count()];
        for (key, tuple) in entries {
            buckets[map.route(&key)].push((key, tuple));
        }
        let key_attrs: Vec<Name> = key_attrs.iter().map(|k| Name::from(*k)).collect();
        Self::from_buckets(name.as_ref(), &key_attrs, map, buckets, total)
    }

    fn from_buckets(
        name: &str,
        key_attrs: &[Name],
        map: ShardMap,
        buckets: Vec<Vec<(Value, Arc<TupleF>)>>,
        total: usize,
    ) -> Result<ShardedRelation> {
        let key_strs: Vec<&str> = key_attrs.iter().map(|n| n.as_ref()).collect();
        let build_one = |entries: Vec<(Value, Arc<TupleF>)>| -> Result<RelationF> {
            let mut b = RelationBuilder::new(name, &key_strs);
            for (k, t) in entries {
                b.push_arc(k, t);
            }
            b.build()
        };
        let cfg = ParConfig::from_env();
        let shards: Vec<Result<RelationF>> = if cfg.should_parallelize(total) && buckets.len() >= 2
        {
            // one task per shard; par_map_chunks keeps shard order
            let buckets: Vec<Vec<(Value, Arc<TupleF>)>> = buckets;
            par_map_chunks(&buckets, cfg.threads.min(buckets.len()), |chunk| {
                chunk
                    .iter()
                    .map(|b| build_one(b.clone()))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            buckets.into_iter().map(build_one).collect()
        };
        // lowest shard's error first == global key order, matching the
        // sequential builder on the same entries
        let shards = shards.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(ShardedRelation {
            map,
            shards: shards.into(),
        })
    }

    /// The routing map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's relation function (panics if `i` is out of range).
    pub fn shard(&self, i: usize) -> &RelationF {
        &self.shards[i]
    }

    /// The shards in key-range order.
    pub fn shards(&self) -> &[RelationF] {
        &self.shards
    }

    /// Total stored entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(RelationF::len).sum()
    }

    /// `true` if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(RelationF::is_empty)
    }

    /// Point lookup: route, then look up inside one shard.
    pub fn lookup(&self, key: &Value) -> Option<Arc<TupleF>> {
        self.shards[self.map.route(key)].lookup(key)
    }

    /// `true` if some shard stores `key`.
    pub fn contains_key(&self, key: &Value) -> bool {
        self.shards[self.map.route(key)].contains_key(key)
    }

    /// Range scan over `[lo, hi]` (inclusive, either bound optional):
    /// only the shards whose ranges intersect the bounds are visited, and
    /// concatenating their per-shard scans in shard order is already the
    /// global key order.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<(Value, Arc<TupleF>)> {
        let (first, last) = self.map.route_range(lo, hi);
        let mut out = Vec::new();
        for shard in &self.shards[first..=last] {
            out.extend(shard.range(lo, hi));
        }
        out
    }

    /// All entries in global key order.
    pub fn iter_stored(&self) -> impl Iterator<Item = (Value, Arc<TupleF>)> + '_ {
        self.shards.iter().flat_map(RelationF::iter_stored)
    }

    /// Insert-or-replace one tuple: rebuilds the routed shard only; the
    /// other shards are shared with `self`.
    pub fn upsert(&self, key: Value, tuple: TupleF) -> Result<ShardedRelation> {
        let i = self.map.route(&key);
        self.replace_shard(i, self.shards[i].upsert(key, tuple)?)
    }

    /// Deletes one key (an error if absent, like [`RelationF::delete`]).
    pub fn delete(&self, key: &Value) -> Result<ShardedRelation> {
        let i = self.map.route(key);
        self.replace_shard(i, self.shards[i].delete(key)?)
    }

    fn replace_shard(&self, i: usize, shard: RelationF) -> Result<ShardedRelation> {
        let mut shards: Vec<RelationF> = self.shards.to_vec();
        shards[i] = shard;
        Ok(ShardedRelation {
            map: self.map.clone(),
            shards: shards.into(),
        })
    }

    /// Applies a per-shard operator to every shard — in parallel across
    /// shards when the total entry count clears the [`ParConfig`] cutoff.
    /// This is how the PR 2 parallel operators run per-shard: `f` sees a
    /// plain relation function and may use any operator on it.
    ///
    /// Routing contract: `f` must not move entries to keys outside the
    /// shard's range (dropping entries or rewriting non-key attributes is
    /// fine — a filter, a projection, an extend). Violations are caught
    /// in debug builds.
    pub fn map_shards(
        &self,
        f: impl Fn(&RelationF) -> Result<RelationF> + Sync,
    ) -> Result<ShardedRelation> {
        let cfg = ParConfig::from_env();
        let outputs: Vec<Result<RelationF>> =
            if cfg.should_parallelize(self.len()) && self.shards.len() >= 2 {
                par_map_chunks(&self.shards, cfg.threads.min(self.shards.len()), |chunk| {
                    chunk.iter().map(&f).collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                self.shards.iter().map(&f).collect()
            };
        let shards = outputs.into_iter().collect::<Result<Vec<_>>>()?;
        debug_assert!(
            shards
                .iter()
                .enumerate()
                .all(|(i, s)| s.iter_stored().all(|(k, _)| self.map.route(&k) == i)),
            "map_shards output moved a key across a shard boundary"
        );
        Ok(ShardedRelation {
            map: self.map.clone(),
            shards: shards.into(),
        })
    }

    /// Merges the shards back into one stored relation — a single O(n)
    /// bulk build, since shard order is global key order. This is the
    /// differential oracle's bridge: `to_relation()` of a sharded
    /// relation must be byte-identical to the unsharded relation it was
    /// split from.
    pub fn to_relation(&self) -> RelationF {
        let name = self.shards[0].name().to_string();
        let key_attrs: Vec<&str> = self.shards[0]
            .key_attrs()
            .iter()
            .map(Name::as_ref)
            .collect();
        let entries: Vec<(Value, Arc<TupleF>)> = self.iter_stored().collect();
        RelationF::from_sorted(&name, &key_attrs, entries)
    }
}

impl std::fmt::Debug for ShardedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRelation")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("boundaries", &self.map.boundaries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> TupleF {
        TupleF::builder("t").attr("x", x).build()
    }

    fn rel(n: i64) -> RelationF {
        RelationF::from_sorted(
            "r",
            &["k"],
            (0..n)
                .map(|i| (Value::Int(i), Arc::new(t(i * 10))))
                .collect(),
        )
    }

    #[test]
    fn boundary_key_routes_right() {
        let map = ShardMap::new(vec![Value::Int(10), Value::Int(20)]).unwrap();
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.route(&Value::Int(9)), 0);
        assert_eq!(map.route(&Value::Int(10)), 1, "boundary key opens shard 1");
        assert_eq!(map.route(&Value::Int(19)), 1);
        assert_eq!(map.route(&Value::Int(20)), 2, "boundary key opens shard 2");
        assert_eq!(map.route(&Value::Int(1000)), 2);
    }

    #[test]
    fn unsorted_boundaries_rejected() {
        assert!(ShardMap::new(vec![Value::Int(5), Value::Int(5)]).is_err());
        assert!(ShardMap::new(vec![Value::Int(9), Value::Int(3)]).is_err());
        assert!(ShardMap::new(Vec::new()).unwrap().shard_count() == 1);
    }

    #[test]
    fn partition_and_merge_roundtrip() {
        let r = rel(100);
        let map = ShardMap::new(vec![Value::Int(30), Value::Int(60)]).unwrap();
        let sharded = ShardedRelation::from_relation(&r, map).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.len(), 100);
        assert_eq!(sharded.shard(0).len(), 30);
        assert_eq!(sharded.shard(1).len(), 30);
        assert_eq!(sharded.shard(2).len(), 40);
        let back = sharded.to_relation();
        assert_eq!(back.stored_keys(), r.stored_keys());
        for k in r.stored_keys() {
            assert!(Arc::ptr_eq(
                &back.lookup(&k).unwrap(),
                &r.lookup(&k).unwrap()
            ));
        }
    }

    #[test]
    fn lookup_and_range_agree_with_unsharded() {
        let r = rel(50);
        let map = ShardMap::for_relation(&r, 4).unwrap();
        let sharded = ShardedRelation::from_relation(&r, map).unwrap();
        for i in -1..51 {
            let k = Value::Int(i);
            match (sharded.lookup(&k), r.lookup(&k)) {
                (Some(a), Some(b)) => assert!(Arc::ptr_eq(&a, &b), "key {i}"),
                (None, None) => {}
                (a, b) => panic!(
                    "key {i}: sharded {:?} vs unsharded {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        let lo = Value::Int(13);
        let hi = Value::Int(37);
        let got: Vec<Value> = sharded
            .range(Some(&lo), Some(&hi))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, (13..=37).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_build_routes_unsorted_entries() {
        let mut entries: Vec<(Value, Arc<TupleF>)> =
            (0..40).map(|i| (Value::Int(i), Arc::new(t(i)))).collect();
        entries.reverse();
        let map = ShardMap::new(vec![Value::Int(20)]).unwrap();
        let sharded = ShardedRelation::build("r", &["k"], map, entries).unwrap();
        assert_eq!(sharded.shard(0).len(), 20);
        assert_eq!(sharded.shard(1).len(), 20);
        assert_eq!(
            sharded.to_relation().stored_keys(),
            (0..40).map(Value::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_key_error_matches_sequential_builder() {
        let entries = vec![
            (Value::Int(1), Arc::new(t(1))),
            (Value::Int(1), Arc::new(t(2))),
        ];
        let map = ShardMap::new(vec![Value::Int(50)]).unwrap();
        let err = ShardedRelation::build("r", &["k"], map, entries.clone()).unwrap_err();
        let mut seq = RelationBuilder::new("r", &["k"]);
        for (k, tu) in entries {
            seq.push_arc(k, tu);
        }
        assert_eq!(err.to_string(), seq.build().unwrap_err().to_string());
    }

    #[test]
    fn upsert_and_delete_rebuild_one_shard() {
        let r = rel(30);
        let map = ShardMap::new(vec![Value::Int(10), Value::Int(20)]).unwrap();
        let sharded = ShardedRelation::from_relation(&r, map).unwrap();
        let updated = sharded.upsert(Value::Int(15), t(999)).unwrap();
        assert_eq!(
            updated.lookup(&Value::Int(15)).unwrap().get("x").unwrap(),
            Value::Int(999)
        );
        // untouched shards are shared, not copied
        assert!(Arc::ptr_eq(
            &updated.shard(0).lookup(&Value::Int(3)).unwrap(),
            &sharded.shard(0).lookup(&Value::Int(3)).unwrap()
        ));
        let deleted = updated.delete(&Value::Int(15)).unwrap();
        assert!(deleted.lookup(&Value::Int(15)).is_none());
        assert_eq!(deleted.len(), 29);
        assert!(
            deleted.delete(&Value::Int(15)).is_err(),
            "absent key errors"
        );
    }

    #[test]
    fn map_shards_runs_operators_per_shard() {
        let r = rel(40);
        let map = ShardMap::new(vec![Value::Int(13), Value::Int(29)]).unwrap();
        let sharded = ShardedRelation::from_relation(&r, map).unwrap();
        // a filter expressed as a per-shard rebuild
        let filtered = sharded
            .map_shards(|shard| {
                let mut b = shard.builder_like();
                for (k, t) in shard.iter_stored() {
                    if t.get("x").unwrap() >= Value::Int(100) {
                        b.push_arc(k, t);
                    }
                }
                b.build()
            })
            .unwrap();
        assert_eq!(filtered.len(), 30);
        assert_eq!(
            filtered.to_relation().stored_keys(),
            (10..40).map(Value::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn for_relation_splits_evenly() {
        let r = rel(100);
        let map = ShardMap::for_relation(&r, 5).unwrap();
        assert_eq!(map.shard_count(), 5);
        let sharded = ShardedRelation::from_relation(&r, map).unwrap();
        for i in 0..5 {
            assert_eq!(sharded.shard(i).len(), 20, "even split");
        }
        // more shards than keys degrades gracefully
        let tiny = rel(2);
        let map = ShardMap::for_relation(&tiny, 10).unwrap();
        assert!(map.shard_count() <= 2);
    }
}
