//! Function domains: where a function is defined.
//!
//! FDM folds what the relational world scatters over keys, CHECK
//! constraints, and foreign keys into *domains* (paper §2.4, §3):
//!
//! * the set of keys a relation function is defined at **is** the set of
//!   tuples that exist;
//! * constraining the domain **is** an integrity constraint;
//! * two functions *sharing* a domain **is** a foreign-key relationship.
//!
//! A domain may be discrete and enumerable (`Enumerated`, `IntRange`,
//! `BoolDomain`) or a *continuous subspace* (`FloatRange`, unbounded
//! `Typed`, arbitrary `Predicate`) in which point lookups work but
//! enumeration is a typed error.

use crate::error::{FdmError, Result};
use crate::types::ValueType;
use crate::value::Value;
use fdm_storage::PSet;
use std::fmt;
use std::sync::Arc;

/// A predicate used to refine a domain.
pub type DomainPredicate = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// The domain (set of valid inputs) of an FDM function.
#[derive(Clone)]
pub enum Domain {
    /// All values of a given type. Enumerable only for `Bool` and `Unit`.
    Typed(ValueType),
    /// An explicit finite set of values (e.g. `X = {1, 3}`, paper §2.4).
    Enumerated(PSet<Value>),
    /// The integer interval `[lo, hi]`, inclusive. Enumerable.
    IntRange(i64, i64),
    /// The continuous float interval `[lo, hi]`, inclusive. **Not**
    /// enumerable — the paper's "continuous subspace of tuple functions".
    FloatRange(f64, f64),
    /// A refinement `{ x ∈ base | pred(x) }`. Enumerable iff `base` is
    /// (enumeration filters by the predicate).
    Predicate {
        /// The domain being refined.
        base: Box<Domain>,
        /// The refining predicate.
        pred: DomainPredicate,
        /// Human-readable description, e.g. `"x > 0"`.
        description: String,
    },
    /// A cartesian product of domains: the domain of a k-ary relationship
    /// function (inputs are `Value::List` of length k). Enumerable iff all
    /// components are.
    Product(Vec<Domain>),
}

impl Domain {
    /// Builds an enumerated domain from values.
    pub fn enumerated(values: impl IntoIterator<Item = Value>) -> Domain {
        Domain::Enumerated(PSet::from_iter(values))
    }

    /// Refines this domain with a predicate.
    pub fn refine(
        self,
        description: impl Into<String>,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Domain {
        Domain::Predicate {
            base: Box::new(self),
            pred: Arc::new(pred),
            description: description.into(),
        }
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::Typed(t) => v.value_type() == *t,
            Domain::Enumerated(set) => set.contains(v),
            Domain::IntRange(lo, hi) => match v {
                Value::Int(i) => lo <= i && i <= hi,
                _ => false,
            },
            Domain::FloatRange(lo, hi) => match v {
                Value::Float(x) => lo <= x && x <= hi,
                Value::Int(i) => *lo <= *i as f64 && (*i as f64) <= *hi,
                _ => false,
            },
            Domain::Predicate { base, pred, .. } => base.contains(v) && pred(v),
            Domain::Product(ds) => match v {
                Value::List(items) => {
                    items.len() == ds.len()
                        && ds.iter().zip(items.iter()).all(|(d, x)| d.contains(x))
                }
                _ => false,
            },
        }
    }

    /// `true` if the domain's members can be enumerated.
    pub fn is_enumerable(&self) -> bool {
        match self {
            Domain::Typed(ValueType::Bool) | Domain::Typed(ValueType::Unit) => true,
            Domain::Typed(_) => false,
            Domain::Enumerated(_) => true,
            Domain::IntRange(_, _) => true,
            Domain::FloatRange(_, _) => false,
            Domain::Predicate { base, .. } => base.is_enumerable(),
            Domain::Product(ds) => ds.iter().all(Domain::is_enumerable),
        }
    }

    /// Number of members, if finite and cheaply known (predicate domains
    /// report their base's bound, i.e. an upper bound).
    pub fn cardinality_hint(&self) -> Option<usize> {
        match self {
            Domain::Typed(ValueType::Bool) => Some(2),
            Domain::Typed(ValueType::Unit) => Some(1),
            Domain::Typed(_) => None,
            Domain::Enumerated(set) => Some(set.len()),
            Domain::IntRange(lo, hi) => {
                usize::try_from(hi.saturating_sub(*lo).saturating_add(1)).ok()
            }
            Domain::FloatRange(_, _) => None,
            Domain::Predicate { base, .. } => base.cardinality_hint(),
            Domain::Product(ds) => {
                let mut n: usize = 1;
                for d in ds {
                    n = n.checked_mul(d.cardinality_hint()?)?;
                }
                Some(n)
            }
        }
    }

    /// Enumerates the members in ascending order, or fails with
    /// [`FdmError::NotEnumerable`].
    pub fn enumerate(&self) -> Result<Vec<Value>> {
        match self {
            Domain::Typed(ValueType::Bool) => Ok(vec![Value::Bool(false), Value::Bool(true)]),
            Domain::Typed(ValueType::Unit) => Ok(vec![Value::Unit]),
            Domain::Typed(t) => Err(FdmError::NotEnumerable {
                what: format!("domain of all {t} values"),
            }),
            Domain::Enumerated(set) => Ok(set.iter().cloned().collect()),
            Domain::IntRange(lo, hi) => {
                if hi < lo {
                    return Ok(Vec::new());
                }
                let n = hi - lo;
                if n > 10_000_000 {
                    return Err(FdmError::NotEnumerable {
                        what: format!("int range [{lo}; {hi}] (too large)"),
                    });
                }
                Ok((*lo..=*hi).map(Value::Int).collect())
            }
            Domain::FloatRange(lo, hi) => Err(FdmError::NotEnumerable {
                what: format!("continuous float range [{lo}; {hi}]"),
            }),
            Domain::Predicate { base, pred, .. } => {
                Ok(base.enumerate()?.into_iter().filter(|v| pred(v)).collect())
            }
            Domain::Product(ds) => {
                let parts: Vec<Vec<Value>> =
                    ds.iter().map(Domain::enumerate).collect::<Result<_>>()?;
                let mut out = vec![Vec::new()];
                for part in &parts {
                    let mut next = Vec::with_capacity(out.len() * part.len());
                    for prefix in &out {
                        for v in part {
                            let mut row = prefix.clone();
                            row.push(v.clone());
                            next.push(row);
                        }
                    }
                    out = next;
                }
                Ok(out.into_iter().map(Value::list).collect())
            }
        }
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Typed(t) => write!(f, "{t}"),
            Domain::Enumerated(set) => {
                write!(f, "{{")?;
                for (i, v) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if i >= 8 {
                        write!(f, "... ({} total)", set.len())?;
                        break;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Domain::IntRange(lo, hi) => write!(f, "[{lo}; {hi}] ∩ int"),
            Domain::FloatRange(lo, hi) => write!(f, "[{lo}; {hi}] ∩ float"),
            Domain::Predicate {
                base, description, ..
            } => {
                write!(f, "{{x ∈ {base} | {description}}}")
            }
            Domain::Product(ds) => {
                for (i, d) in ds.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

/// A **named, shared** domain.
///
/// Paper §3: "we enforce these [foreign-key] constraints as a side effect
/// by simply making functions share the same domains." A `SharedDomain` is
/// an `Arc`-shared named domain; two function parameters referencing the
/// *same* `SharedDomain` (pointer-equal) are in a foreign-key relationship
/// by construction.
#[derive(Clone)]
pub struct SharedDomain {
    inner: Arc<SharedDomainInner>,
}

struct SharedDomainInner {
    name: String,
    domain: Domain,
}

impl SharedDomain {
    /// Creates a new shared domain with the given name.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        SharedDomain {
            inner: Arc::new(SharedDomainInner {
                name: name.into(),
                domain,
            }),
        }
    }

    /// The domain's name (e.g. `"cid"`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The underlying domain.
    pub fn domain(&self) -> &Domain {
        &self.inner.domain
    }

    /// `true` if `self` and `other` are *the same* shared domain (pointer
    /// identity) — the FDM notion of a foreign-key link.
    pub fn same_as(&self, other: &SharedDomain) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Membership test, delegating to the underlying domain.
    pub fn contains(&self, v: &Value) -> bool {
        self.inner.domain.contains(v)
    }
}

impl fmt::Debug for SharedDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedDomain({}: {})",
            self.inner.name, self.inner.domain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_domain_membership() {
        let d = Domain::Typed(ValueType::Int);
        assert!(d.contains(&Value::Int(5)));
        assert!(!d.contains(&Value::str("x")));
        assert!(!d.is_enumerable());
        assert!(d.enumerate().is_err());
        assert!(Domain::Typed(ValueType::Bool).is_enumerable());
        assert_eq!(Domain::Typed(ValueType::Bool).enumerate().unwrap().len(), 2);
    }

    #[test]
    fn enumerated_domain_from_paper_r_example() {
        // R(bar : X) where X = {1, 3} ∩ N+   (paper §2.4)
        let d = Domain::enumerated([Value::Int(1), Value::Int(3)]);
        assert!(d.contains(&Value::Int(1)));
        assert!(!d.contains(&Value::Int(2)));
        assert_eq!(d.cardinality_hint(), Some(2));
        assert_eq!(d.enumerate().unwrap(), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn float_range_is_continuous_not_enumerable() {
        // R(bar : X) where X = [7; 12] ∩ R+   (paper §2.4)
        let d = Domain::FloatRange(7.0, 12.0);
        assert!(d.contains(&Value::Float(7.5)));
        assert!(d.contains(&Value::Int(9)), "ints embed in the reals");
        assert!(!d.contains(&Value::Float(12.5)));
        assert!(!d.is_enumerable());
        let err = d.enumerate().unwrap_err();
        assert!(err.to_string().contains("not enumerable"));
    }

    #[test]
    fn int_range_enumerates_inclusively() {
        let d = Domain::IntRange(2, 5);
        assert_eq!(d.cardinality_hint(), Some(4));
        assert_eq!(
            d.enumerate().unwrap(),
            vec![Value::Int(2), Value::Int(3), Value::Int(4), Value::Int(5)]
        );
        assert!(Domain::IntRange(5, 2).enumerate().unwrap().is_empty());
    }

    #[test]
    fn predicate_refinement() {
        let d =
            Domain::IntRange(0, 10).refine("even", |v| matches!(v, Value::Int(i) if i % 2 == 0));
        assert!(d.contains(&Value::Int(4)));
        assert!(!d.contains(&Value::Int(3)));
        assert!(!d.contains(&Value::Int(12)), "must still be in base");
        assert_eq!(d.enumerate().unwrap().len(), 6);
        assert!(d.to_string().contains("even"));
    }

    #[test]
    fn product_domain_for_relationship_functions() {
        // order(cid, pid) has domain cid × pid  (paper §3, Fig. 1)
        let cid = Domain::enumerated([Value::Int(1), Value::Int(2)]);
        let pid = Domain::enumerated([Value::Int(10), Value::Int(20)]);
        let d = Domain::Product(vec![cid, pid]);
        assert!(d.contains(&Value::list([Value::Int(1), Value::Int(20)])));
        assert!(!d.contains(&Value::list([Value::Int(1), Value::Int(30)])));
        assert!(!d.contains(&Value::Int(1)), "scalar is not a pair");
        assert!(!d.contains(&Value::list([Value::Int(1)])), "wrong arity");
        assert_eq!(d.cardinality_hint(), Some(4));
        assert_eq!(d.enumerate().unwrap().len(), 4);
    }

    #[test]
    fn shared_domain_identity_is_the_fk_link() {
        let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
        let cid2 = cid.clone();
        let other = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
        assert!(cid.same_as(&cid2), "clones share identity");
        assert!(
            !cid.same_as(&other),
            "structurally equal but distinct domains are NOT the same FK link"
        );
        assert!(cid.contains(&Value::Int(7)));
    }

    #[test]
    fn huge_int_range_refuses_enumeration() {
        let d = Domain::IntRange(0, i64::MAX);
        assert!(d.enumerate().is_err());
        assert!(d.contains(&Value::Int(i64::MAX)));
    }
}
