//! A persistent ordered set, a thin wrapper over [`PMap`].

use crate::pmap::PMap;
use std::borrow::Borrow;
use std::fmt;

/// A persistent (immutable, structurally shared) ordered set.
///
/// All mutating operations return a new set; `clone` is O(1).
///
/// # Examples
///
/// ```
/// use fdm_storage::PSet;
///
/// let s = PSet::from_iter([3, 1, 2]);
/// assert!(s.contains(&2));
/// let s2 = s.insert(4).0;
/// assert_eq!(s.len(), 3);
/// assert_eq!(s2.len(), 4);
/// ```
pub struct PSet<T> {
    map: PMap<T, ()>,
}

impl<T> Clone for PSet<T> {
    fn clone(&self) -> Self {
        PSet {
            map: self.map.clone(),
        }
    }
}

impl<T> Default for PSet<T> {
    fn default() -> Self {
        PSet {
            map: PMap::default(),
        }
    }
}

impl<T> PSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<T: Ord + Clone> PSet<T> {
    /// `true` if `item` is a member.
    pub fn contains<Q>(&self, item: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(item)
    }

    /// Inserts `item`; returns the new set and whether the item was new.
    pub fn insert(&self, item: T) -> (Self, bool) {
        let (map, old) = self.map.insert(item, ());
        (PSet { map }, old.is_none())
    }

    /// Removes `item`; returns the new set and whether it was present.
    pub fn remove<Q>(&self, item: &Q) -> (Self, bool)
    where
        T: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (map, old) = self.map.remove(item);
        (PSet { map }, old.is_some())
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.map.keys()
    }

    /// Smallest member.
    pub fn first(&self) -> Option<&T> {
        self.map.first().map(|(k, _)| k)
    }

    /// Largest member.
    pub fn last(&self) -> Option<&T> {
        self.map.last().map(|(k, _)| k)
    }

    /// Set union (elements of either).
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for item in other.iter() {
            out = out.insert(item.clone()).0;
        }
        out
    }

    /// Set intersection (elements of both).
    pub fn intersection(&self, other: &Self) -> Self {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = PSet::new();
        for item in small.iter() {
            if large.contains(item) {
                out = out.insert(item.clone()).0;
            }
        }
        out
    }

    /// Set difference (elements of `self` not in `other`).
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = PSet::new();
        for item in self.iter() {
            if !other.contains(item) {
                out = out.insert(item.clone()).0;
            }
        }
        out
    }

    /// O(n + m) **merge union**: both trees are walked in order with two
    /// pointers and the result is bulk-built, instead of inserting
    /// `other`'s members one by one (O(m log n) each). Equivalent to
    /// [`Self::union`] (property-tested), just algorithmically cheaper.
    pub fn merge_union(&self, other: &Self) -> Self {
        PSet {
            map: self.map.merge_union(&other.map),
        }
    }

    /// O(n + m) merge counterpart of [`Self::intersection`].
    pub fn merge_intersection(&self, other: &Self) -> Self {
        PSet {
            map: self.map.merge_intersection(&other.map),
        }
    }

    /// O(n + m) merge counterpart of [`Self::difference`].
    pub fn merge_difference(&self, other: &Self) -> Self {
        PSet {
            map: self.map.merge_difference(&other.map),
        }
    }

    /// Builds a set from an iterator.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = T>>(it: I) -> Self {
        PSet {
            map: PMap::from_iter(it.into_iter().map(|t| (t, ()))),
        }
    }

    /// Builds a set in **O(n)** from strictly ascending items (the bulk
    /// fast path; ordering checked by `debug_assert` only).
    pub fn from_sorted_vec(items: Vec<T>) -> Self {
        PSet {
            map: PMap::from_sorted_iter(items.into_iter().map(|t| (t, ()))),
        }
    }

    /// [`Self::from_sorted_vec`] from any iterator of strictly ascending
    /// items.
    pub fn from_sorted_iter<I: IntoIterator<Item = T>>(it: I) -> Self {
        Self::from_sorted_vec(it.into_iter().collect())
    }
}

impl<T: Ord + Clone> FromIterator<T> for PSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(it: I) -> Self {
        PSet::from_iter(it)
    }
}

impl<T: Ord + Clone + fmt::Debug> fmt::Debug for PSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Ord + Clone> PartialEq for PSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Ord + Clone> Eq for PSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let s = PSet::new().insert(5).0;
        assert!(s.contains(&5));
        let (s2, was_new) = s.insert(5);
        assert!(!was_new);
        assert_eq!(s2.len(), 1);
        let (s3, removed) = s2.remove(&5);
        assert!(removed);
        assert!(s3.is_empty());
        assert!(s2.contains(&5), "old snapshot unaffected");
    }

    #[test]
    fn union_intersection_difference() {
        let a = PSet::from_iter([1, 2, 3, 4]);
        let b = PSet::from_iter([3, 4, 5]);
        assert_eq!(a.union(&b), PSet::from_iter([1, 2, 3, 4, 5]));
        assert_eq!(a.intersection(&b), PSet::from_iter([3, 4]));
        assert_eq!(a.difference(&b), PSet::from_iter([1, 2]));
        assert_eq!(b.difference(&a), PSet::from_iter([5]));
    }

    #[test]
    fn iteration_sorted_and_bounds() {
        let s = PSet::from_iter([9, 1, 5]);
        let v: Vec<_> = s.iter().copied().collect();
        assert_eq!(v, vec![1, 5, 9]);
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&9));
    }

    #[test]
    fn bulk_built_set_behaves_like_incremental() {
        let s = PSet::from_sorted_vec((0..20).collect());
        assert_eq!(s.len(), 20);
        assert!(s.contains(&19));
        let (s2, was_new) = s.insert(20);
        assert!(was_new);
        assert_eq!(s2.len(), 21);
    }

    #[test]
    fn merge_setops_match_per_element_versions() {
        let a = PSet::from_iter([1, 2, 3, 4, 9]);
        let b = PSet::from_iter([3, 4, 5, 8]);
        assert_eq!(a.merge_union(&b), a.union(&b));
        assert_eq!(a.merge_intersection(&b), a.intersection(&b));
        assert_eq!(a.merge_difference(&b), a.difference(&b));
        assert_eq!(b.merge_difference(&a), b.difference(&a));
        let e: PSet<i32> = PSet::new();
        assert_eq!(a.merge_union(&e), a);
        assert_eq!(e.merge_intersection(&a), e);
        assert_eq!(a.merge_difference(&e), a);
    }

    #[test]
    fn empty_set_ops() {
        let e: PSet<i32> = PSet::new();
        let a = PSet::from_iter([1]);
        assert_eq!(e.union(&a), a);
        assert_eq!(e.intersection(&a), e);
        assert_eq!(a.difference(&e), a);
    }
}
