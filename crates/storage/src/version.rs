//! A versioned root cell for snapshot-based concurrency.
//!
//! [`VersionedRoot`] holds the *current committed version* of an arbitrary
//! persistent value (in the engine: the database function root). Readers
//! take O(1) snapshots; writers install new versions with an optimistic
//! compare-and-swap keyed on the version number, which is exactly the
//! primitive a first-committer-wins snapshot-isolation commit needs.

use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// The splitmix64 finalizer: a fast, high-quality 64-bit avalanche.
///
/// This is the repo's **single** splitmix64 — [`Backoff`] seeds its jitter
/// stream with it and `fdm_core`'s `DistinctSketch` (re-exported there as
/// `fdm_core::splitmix64`) whitens FxHash outputs with it. The two used to
/// carry private copies; they must keep producing bit-identical outputs,
/// which the sketch's register-identity regression test pins.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic exponential backoff with seeded jitter.
///
/// The delay ceiling doubles each attempt (`base`, `2·base`, `4·base`, …
/// capped at `max`); the actual delay is drawn uniformly from
/// `[ceiling/2, ceiling]` by a seeded xorshift generator, so two
/// `Backoff`s built from the same seed produce the **same** delay
/// sequence — contention tests and fault-injection runs stay
/// reproducible — while different seeds desynchronize contending
/// committers (the point of jitter).
///
/// # Examples
///
/// ```
/// use fdm_storage::Backoff;
/// use std::time::Duration;
///
/// let mut a = Backoff::new(Duration::from_micros(10), Duration::from_millis(1), 7);
/// let mut b = Backoff::new(Duration::from_micros(10), Duration::from_millis(1), 7);
/// assert_eq!(a.next_delay(), b.next_delay(), "same seed, same jitter");
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    state: u64,
    attempt: u32,
}

impl Backoff {
    /// Creates a backoff schedule starting at `base`, capped at `max`,
    /// with jitter drawn from `seed`.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            max,
            // splitmix64: nearby seeds yield unrelated streams; |1 keeps
            // the state off xorshift's fixed point at 0
            state: splitmix64(seed) | 1,
            attempt: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt += 1;
        let ceiling = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.max)
            .max(Duration::from_nanos(2));
        let nanos = ceiling.as_nanos() as u64;
        let jitter = self.next_u64() % (nanos / 2 + 1);
        Duration::from_nanos(nanos - jitter)
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Sleeps for the next delay in the schedule.
    pub fn sleep_next(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

/// A monotonically increasing version number assigned at each commit.
pub type Version = u64;

/// A snapshot of the root at some version.
#[derive(Debug, Clone)]
pub struct Snapshot<T> {
    /// Version at which this snapshot was taken.
    pub version: Version,
    /// The (persistent) value; cloning it is cheap by construction.
    pub value: T,
}

/// The error returned when a conditional install loses the race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionConflict {
    /// The version the caller expected to still be current.
    pub expected: Version,
    /// The version actually current at install time.
    pub found: Version,
}

impl std::fmt::Display for VersionConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "version conflict: expected current version {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for VersionConflict {}

/// A concurrent cell holding the current committed version of a value.
///
/// `T` is expected to be a persistent structure (e.g. [`crate::PMap`]) whose
/// clone is O(1); `load` then costs a lock acquisition plus a pointer copy.
///
/// # Examples
///
/// ```
/// use fdm_storage::{PMap, VersionedRoot};
///
/// let root = VersionedRoot::new(PMap::<i64, i64>::new());
/// let snap = root.load();
/// let updated = snap.value.insert(1, 100).0;
/// root.try_install(snap.version, updated).unwrap();
/// assert_eq!(root.load().value.get(&1), Some(&100));
/// ```
#[derive(Debug)]
pub struct VersionedRoot<T> {
    inner: RwLock<Snapshot<T>>,
}

impl<T: Clone> VersionedRoot<T> {
    /// Creates a root at version 0 holding `value`.
    pub fn new(value: T) -> Self {
        VersionedRoot {
            inner: RwLock::new(Snapshot { version: 0, value }),
        }
    }

    /// Creates a root at an explicit `version` holding `value` — the
    /// recovery constructor: a store rebuilt from a checkpoint + log
    /// replay must resume version numbering where the crashed process
    /// stopped, not restart at 0.
    pub fn with_version(value: T, version: Version) -> Self {
        VersionedRoot {
            inner: RwLock::new(Snapshot { version, value }),
        }
    }

    /// Takes a snapshot of the current version.
    pub fn load(&self) -> Snapshot<T> {
        self.inner.read().clone()
    }

    /// Current version number.
    pub fn version(&self) -> Version {
        self.inner.read().version
    }

    /// Unconditionally installs `value` as the next version and returns the
    /// new version number.
    pub fn install(&self, value: T) -> Version {
        let mut guard = self.inner.write();
        guard.version += 1;
        guard.value = value;
        guard.version
    }

    /// Installs `value` only if the current version is still `expected`
    /// (optimistic concurrency / first-committer-wins). On success returns
    /// the new version.
    pub fn try_install(&self, expected: Version, value: T) -> Result<Version, VersionConflict> {
        let mut guard = self.inner.write();
        if guard.version != expected {
            return Err(VersionConflict {
                expected,
                found: guard.version,
            });
        }
        guard.version += 1;
        guard.value = value;
        Ok(guard.version)
    }

    /// Optimistic install with bounded, backoff-paced retries: each
    /// attempt snapshots the current version, computes a candidate with
    /// `next`, and CAS-installs it; on a lost race the thread sleeps the
    /// backoff's next delay and recomputes from the fresh snapshot.
    /// Returns `(new_version, attempts_used)` on success, or the last
    /// [`VersionConflict`] once `max_attempts` (min 1) are spent.
    ///
    /// Unlike [`Self::update`] this never holds the write lock across the
    /// computation, so `next` may be arbitrarily slow without blocking
    /// readers or other writers.
    pub fn install_with_retry<F>(
        &self,
        max_attempts: usize,
        backoff: &mut Backoff,
        mut next: F,
    ) -> Result<(Version, usize), VersionConflict>
    where
        F: FnMut(&Snapshot<T>) -> T,
    {
        let max_attempts = max_attempts.max(1);
        let mut last = VersionConflict {
            expected: 0,
            found: 0,
        };
        for attempt in 1..=max_attempts {
            let snap = self.load();
            let candidate = next(&snap);
            match self.try_install(snap.version, candidate) {
                Ok(v) => return Ok((v, attempt)),
                Err(conflict) => {
                    last = conflict;
                    if attempt < max_attempts {
                        backoff.sleep_next();
                    }
                }
            }
        }
        Err(last)
    }

    /// Atomically applies `f` to the current value and installs the result;
    /// returns the new version. Unlike [`Self::try_install`] this cannot
    /// fail, because it holds the write lock across the transformation.
    pub fn update<F: FnOnce(&T) -> T>(&self, f: F) -> Version {
        let mut guard = self.inner.write();
        let next = f(&guard.value);
        guard.version += 1;
        guard.value = next;
        guard.version
    }
}

/// Shared handle alias: the common way to pass a root between threads.
pub type SharedRoot<T> = Arc<VersionedRoot<T>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PMap;

    #[test]
    fn splitmix64_matches_the_reference_finalizer() {
        // the inlined copies this function replaced, kept verbatim as the
        // reference: Backoff seeding and DistinctSketch whitening must
        // keep observing these exact bits
        fn reference(x: u64) -> u64 {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for x in [0u64, 1, 2, 0xFD17, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(splitmix64(x), reference(x), "diverged at {x:#x}");
        }
        // the canonical splitmix64 test vector (Vigna): state 0 steps to
        // this first output
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn with_version_resumes_numbering() {
        let root = VersionedRoot::with_version(7i64, 41);
        assert_eq!(root.version(), 41);
        let snap = root.load();
        assert_eq!((snap.version, snap.value), (41, 7));
        assert_eq!(root.try_install(41, 8).unwrap(), 42);
    }

    #[test]
    fn load_install_roundtrip() {
        let root = VersionedRoot::new(0i64);
        assert_eq!(root.version(), 0);
        let v1 = root.install(10);
        assert_eq!(v1, 1);
        assert_eq!(root.load().value, 10);
    }

    #[test]
    fn try_install_detects_conflict() {
        let root = VersionedRoot::new(0i64);
        let snap = root.load();
        root.install(1); // someone else commits
        let err = root.try_install(snap.version, 2).unwrap_err();
        assert_eq!(err.expected, 0);
        assert_eq!(err.found, 1);
        assert_eq!(root.load().value, 1, "losing install must not apply");
    }

    #[test]
    fn snapshots_survive_installs() {
        let root = VersionedRoot::new(PMap::from_iter([(1, "one")]));
        let snap = root.load();
        root.update(|m| m.insert(2, "two").0);
        assert_eq!(snap.value.len(), 1, "old snapshot unchanged");
        assert_eq!(root.load().value.len(), 2);
    }

    fn tiny_backoff(seed: u64) -> Backoff {
        Backoff::new(Duration::from_nanos(10), Duration::from_nanos(100), seed)
    }

    #[test]
    fn backoff_is_deterministic_under_a_fixed_seed() {
        let mut a = Backoff::new(Duration::from_micros(20), Duration::from_millis(2), 0xFD17);
        let mut b = Backoff::new(Duration::from_micros(20), Duration::from_millis(2), 0xFD17);
        let seq_a: Vec<Duration> = (0..12).map(|_| a.next_delay()).collect();
        let seq_b: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same schedule");
        let mut c = Backoff::new(Duration::from_micros(20), Duration::from_millis(2), 0xFD18);
        let seq_c: Vec<Duration> = (0..12).map(|_| c.next_delay()).collect();
        assert_ne!(seq_a, seq_c, "different seeds must desynchronize");
    }

    #[test]
    fn backoff_delays_are_bounded_and_grow_to_the_cap() {
        let base = Duration::from_micros(10);
        let max = Duration::from_micros(500);
        let mut b = Backoff::new(base, max, 1);
        for i in 0..32 {
            let d = b.next_delay();
            // ceiling for attempt i is min(base << i, max); jitter keeps
            // the draw within [ceiling/2, ceiling]
            let ceiling = base.saturating_mul(1 << i.min(16)).min(max);
            assert!(d <= ceiling, "attempt {i}: {d:?} above ceiling {ceiling:?}");
            assert!(
                d >= ceiling / 2,
                "attempt {i}: {d:?} below half-ceiling {ceiling:?}"
            );
        }
        assert_eq!(b.attempts(), 32);
    }

    #[test]
    fn install_with_retry_is_bounded_under_permanent_contention() {
        let root = VersionedRoot::new(0i64);
        let mut calls = 0;
        let err = root
            .install_with_retry(5, &mut tiny_backoff(3), |snap| {
                calls += 1;
                // a contender always sneaks in between load and install
                root.install(snap.value + 100);
                snap.value + 1
            })
            .unwrap_err();
        assert_eq!(calls, 5, "exactly max_attempts candidate computations");
        assert!(err.found > err.expected);
    }

    #[test]
    fn install_with_retry_recomputes_from_the_fresh_snapshot() {
        let root = VersionedRoot::new(10i64);
        let mut first = true;
        let (v, attempts) = root
            .install_with_retry(5, &mut tiny_backoff(4), |snap| {
                if first {
                    first = false;
                    root.install(snap.value + 5); // lose exactly one race
                }
                snap.value * 2
            })
            .unwrap();
        assert_eq!(attempts, 2);
        assert_eq!(v, 2);
        // the winning candidate saw the contender's value (15), not the
        // original snapshot (10)
        assert_eq!(root.load().value, 30);
    }

    #[test]
    fn concurrent_updates_all_apply() {
        use std::sync::Arc;
        let root = Arc::new(VersionedRoot::new(PMap::<i64, i64>::new()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let root = Arc::clone(&root);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    root.update(|m| m.insert(t * 1000 + i, i).0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(root.load().value.len(), 8 * 50);
        assert_eq!(root.version(), 8 * 50);
    }
}
