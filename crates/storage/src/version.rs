//! A versioned root cell for snapshot-based concurrency.
//!
//! [`VersionedRoot`] holds the *current committed version* of an arbitrary
//! persistent value (in the engine: the database function root). Readers
//! take O(1) snapshots; writers install new versions with an optimistic
//! compare-and-swap keyed on the version number, which is exactly the
//! primitive a first-committer-wins snapshot-isolation commit needs.

use parking_lot::RwLock;
use std::sync::Arc;

/// A monotonically increasing version number assigned at each commit.
pub type Version = u64;

/// A snapshot of the root at some version.
#[derive(Debug, Clone)]
pub struct Snapshot<T> {
    /// Version at which this snapshot was taken.
    pub version: Version,
    /// The (persistent) value; cloning it is cheap by construction.
    pub value: T,
}

/// The error returned when a conditional install loses the race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionConflict {
    /// The version the caller expected to still be current.
    pub expected: Version,
    /// The version actually current at install time.
    pub found: Version,
}

impl std::fmt::Display for VersionConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "version conflict: expected current version {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for VersionConflict {}

/// A concurrent cell holding the current committed version of a value.
///
/// `T` is expected to be a persistent structure (e.g. [`crate::PMap`]) whose
/// clone is O(1); `load` then costs a lock acquisition plus a pointer copy.
///
/// # Examples
///
/// ```
/// use fdm_storage::{PMap, VersionedRoot};
///
/// let root = VersionedRoot::new(PMap::<i64, i64>::new());
/// let snap = root.load();
/// let updated = snap.value.insert(1, 100).0;
/// root.try_install(snap.version, updated).unwrap();
/// assert_eq!(root.load().value.get(&1), Some(&100));
/// ```
#[derive(Debug)]
pub struct VersionedRoot<T> {
    inner: RwLock<Snapshot<T>>,
}

impl<T: Clone> VersionedRoot<T> {
    /// Creates a root at version 0 holding `value`.
    pub fn new(value: T) -> Self {
        VersionedRoot {
            inner: RwLock::new(Snapshot { version: 0, value }),
        }
    }

    /// Takes a snapshot of the current version.
    pub fn load(&self) -> Snapshot<T> {
        self.inner.read().clone()
    }

    /// Current version number.
    pub fn version(&self) -> Version {
        self.inner.read().version
    }

    /// Unconditionally installs `value` as the next version and returns the
    /// new version number.
    pub fn install(&self, value: T) -> Version {
        let mut guard = self.inner.write();
        guard.version += 1;
        guard.value = value;
        guard.version
    }

    /// Installs `value` only if the current version is still `expected`
    /// (optimistic concurrency / first-committer-wins). On success returns
    /// the new version.
    pub fn try_install(&self, expected: Version, value: T) -> Result<Version, VersionConflict> {
        let mut guard = self.inner.write();
        if guard.version != expected {
            return Err(VersionConflict {
                expected,
                found: guard.version,
            });
        }
        guard.version += 1;
        guard.value = value;
        Ok(guard.version)
    }

    /// Atomically applies `f` to the current value and installs the result;
    /// returns the new version. Unlike [`Self::try_install`] this cannot
    /// fail, because it holds the write lock across the transformation.
    pub fn update<F: FnOnce(&T) -> T>(&self, f: F) -> Version {
        let mut guard = self.inner.write();
        let next = f(&guard.value);
        guard.version += 1;
        guard.value = next;
        guard.version
    }
}

/// Shared handle alias: the common way to pass a root between threads.
pub type SharedRoot<T> = Arc<VersionedRoot<T>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PMap;

    #[test]
    fn load_install_roundtrip() {
        let root = VersionedRoot::new(0i64);
        assert_eq!(root.version(), 0);
        let v1 = root.install(10);
        assert_eq!(v1, 1);
        assert_eq!(root.load().value, 10);
    }

    #[test]
    fn try_install_detects_conflict() {
        let root = VersionedRoot::new(0i64);
        let snap = root.load();
        root.install(1); // someone else commits
        let err = root.try_install(snap.version, 2).unwrap_err();
        assert_eq!(err.expected, 0);
        assert_eq!(err.found, 1);
        assert_eq!(root.load().value, 1, "losing install must not apply");
    }

    #[test]
    fn snapshots_survive_installs() {
        let root = VersionedRoot::new(PMap::from_iter([(1, "one")]));
        let snap = root.load();
        root.update(|m| m.insert(2, "two").0);
        assert_eq!(snap.value.len(), 1, "old snapshot unchanged");
        assert_eq!(root.load().value.len(), 2);
    }

    #[test]
    fn concurrent_updates_all_apply() {
        use std::sync::Arc;
        let root = Arc::new(VersionedRoot::new(PMap::<i64, i64>::new()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let root = Arc::clone(&root);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    root.update(|m| m.insert(t * 1000 + i, i).0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(root.load().value.len(), 8 * 50);
        assert_eq!(root.version(), 8 * 50);
    }
}
