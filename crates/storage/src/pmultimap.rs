//! A persistent ordered multimap: `PMap<K, PSet<V>>`.
//!
//! This is the shape of a non-unique secondary index. In the paper's terms
//! (§2.4), a relation function `R3(foo) -> {TF}` mapping a non-key attribute
//! to a *set* of tuple functions "is exactly what indexes on attributes with
//! duplicates do" — the multimap realizes that conceptual structure.

use crate::pmap::PMap;
use crate::pset::PSet;
use std::borrow::Borrow;
use std::fmt;

/// A persistent multimap from keys to ordered sets of values.
///
/// `clone` is O(1); all mutating operations return a new multimap.
///
/// # Examples
///
/// ```
/// use fdm_storage::PMultiMap;
///
/// let m = PMultiMap::new().insert(25, "bob").0.insert(25, "thomas").0;
/// assert_eq!(m.get(&25).map(|s| s.len()), Some(2));
/// assert_eq!(m.total_len(), 2);
/// ```
pub struct PMultiMap<K, V> {
    map: PMap<K, PSet<V>>,
    total: usize,
}

impl<K, V> Clone for PMultiMap<K, V> {
    fn clone(&self) -> Self {
        PMultiMap {
            map: self.map.clone(),
            total: self.total,
        }
    }
}

impl<K, V> Default for PMultiMap<K, V> {
    fn default() -> Self {
        PMultiMap {
            map: PMap::default(),
            total: 0,
        }
    }
}

impl<K, V> PMultiMap<K, V> {
    /// Creates an empty multimap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys.
    pub fn key_len(&self) -> usize {
        self.map.len()
    }

    /// Total number of (key, value) pairs.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl<K: Ord + Clone, V: Ord + Clone> PMultiMap<K, V> {
    /// The set of values under `key`, if any.
    pub fn get<Q>(&self, key: &Q) -> Option<&PSet<V>>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.get(key)
    }

    /// Inserts a (key, value) pair; returns the new multimap and whether the
    /// pair was new.
    pub fn insert(&self, key: K, val: V) -> (Self, bool) {
        let set = self.map.get(&key).cloned().unwrap_or_default();
        let (set, was_new) = set.insert(val);
        let map = self.map.insert(key, set).0;
        (
            PMultiMap {
                map,
                total: self.total + usize::from(was_new),
            },
            was_new,
        )
    }

    /// Removes a specific (key, value) pair; empty value sets are dropped.
    pub fn remove(&self, key: &K, val: &V) -> (Self, bool) {
        match self.map.get(key) {
            None => (self.clone(), false),
            Some(set) => {
                let (set, removed) = set.remove(val);
                if !removed {
                    return (self.clone(), false);
                }
                let map = if set.is_empty() {
                    self.map.remove(key).0
                } else {
                    self.map.insert(key.clone(), set).0
                };
                (
                    PMultiMap {
                        map,
                        total: self.total - 1,
                    },
                    true,
                )
            }
        }
    }

    /// Removes all values under `key`; returns the new multimap and the
    /// removed set, if any.
    pub fn remove_key(&self, key: &K) -> (Self, Option<PSet<V>>) {
        let (map, old) = self.map.remove(key);
        match old {
            None => (self.clone(), None),
            Some(set) => (
                PMultiMap {
                    map,
                    total: self.total - set.len(),
                },
                Some(set),
            ),
        }
    }

    /// Builds a multimap in **O(n)** from `(key, value)` pairs sorted
    /// ascending by key, then value. Duplicate pairs collapse (set
    /// semantics, matching repeated [`Self::insert`]); ordering is checked
    /// by `debug_assert` only.
    pub fn from_sorted_vec(pairs: Vec<(K, V)>) -> Self {
        debug_assert!(
            pairs
                .windows(2)
                .all(|w| (&w[0].0, &w[0].1) <= (&w[1].0, &w[1].1)),
            "from_sorted_vec: pairs must be sorted by (key, value)"
        );
        let mut groups: Vec<(K, PSet<V>)> = Vec::new();
        let mut total = 0usize;
        let mut pairs = pairs.into_iter().peekable();
        while let Some((key, first)) = pairs.next() {
            let mut vals = vec![first];
            while pairs.peek().is_some_and(|(k, _)| *k == key) {
                let (_, v) = pairs.next().expect("peeked");
                if vals.last() != Some(&v) {
                    vals.push(v);
                }
            }
            total += vals.len();
            groups.push((key, PSet::from_sorted_vec(vals)));
        }
        PMultiMap {
            map: PMap::from_sorted_vec(groups),
            total,
        }
    }

    /// O(n + m) **merge union**: every key of either multimap, with the
    /// value sets of shared keys merged set-union-wise — equivalent to
    /// inserting every `(key, value)` pair of `other`, without the
    /// per-pair persistent-insert cost.
    pub fn merge_union(&self, other: &Self) -> Self {
        let map = self
            .map
            .merge_union_with(&other.map, |_, a, b| a.merge_union(b));
        Self::from_merged(map)
    }

    /// O(n + m) **merge intersection**: keys present in both multimaps,
    /// holding the intersection of their value sets; keys whose value sets
    /// share nothing are dropped.
    pub fn merge_intersection(&self, other: &Self) -> Self {
        let map = self.map.merge_intersection_with(&other.map, |_, a, b| {
            let s = a.merge_intersection(b);
            (!s.is_empty()).then_some(s)
        });
        Self::from_merged(map)
    }

    /// O(n + m) **merge difference**: the `(key, value)` pairs of `self`
    /// not present in `other`; keys whose value sets empty out are
    /// dropped (matching repeated [`Self::remove`]).
    pub fn merge_difference(&self, other: &Self) -> Self {
        let map = self.map.merge_difference_with(&other.map, |_, a, b| {
            let s = a.merge_difference(b);
            (!s.is_empty()).then_some(s)
        });
        Self::from_merged(map)
    }

    /// Wraps a merged key map, recounting `total` (each set's `len` is
    /// O(1), so this is O(distinct keys)).
    fn from_merged(map: PMap<K, PSet<V>>) -> Self {
        let total = map.values().map(|s| s.len()).sum();
        PMultiMap { map, total }
    }

    /// [`Self::from_sorted_vec`] from any iterator of sorted pairs.
    pub fn from_sorted_iter<I: IntoIterator<Item = (K, V)>>(it: I) -> Self {
        Self::from_sorted_vec(it.into_iter().collect())
    }

    /// Iterates `(key, value-set)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &PSet<V>)> + '_ {
        self.map.iter()
    }

    /// Iterates all `(key, value)` pairs, keys ascending, values ascending
    /// within each key.
    pub fn iter_flat(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.map
            .iter()
            .flat_map(|(k, set)| set.iter().map(move |v| (k, v)))
    }
}

impl<K: Ord + Clone + fmt::Debug, V: Ord + Clone + fmt::Debug> fmt::Debug for PMultiMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_keys_accumulate() {
        let m = PMultiMap::new()
            .insert("foo", 1)
            .0
            .insert("foo", 2)
            .0
            .insert("bar", 3)
            .0;
        assert_eq!(m.key_len(), 2);
        assert_eq!(m.total_len(), 3);
        let foos: Vec<_> = m.get("foo").unwrap().iter().copied().collect();
        assert_eq!(foos, vec![1, 2]);
    }

    #[test]
    fn duplicate_pair_is_noop() {
        let m = PMultiMap::new().insert(1, 'a').0;
        let (m2, was_new) = m.insert(1, 'a');
        assert!(!was_new);
        assert_eq!(m2.total_len(), 1);
    }

    #[test]
    fn remove_pair_and_key() {
        let m = PMultiMap::new().insert(1, 'a').0.insert(1, 'b').0;
        let (m2, removed) = m.remove(&1, &'a');
        assert!(removed);
        assert_eq!(m2.total_len(), 1);
        assert!(m2.get(&1).unwrap().contains(&'b'));
        // removing the last value drops the key entirely
        let (m3, removed) = m2.remove(&1, &'b');
        assert!(removed);
        assert_eq!(m3.key_len(), 0);
        // snapshot semantics
        assert_eq!(m.total_len(), 2);
        // remove_key
        let (m4, set) = m.remove_key(&1);
        assert_eq!(set.unwrap().len(), 2);
        assert!(m4.is_empty());
    }

    #[test]
    fn merge_setops_on_value_sets() {
        let a = PMultiMap::from_sorted_vec(vec![(1, 'a'), (1, 'b'), (2, 'x')]);
        let b = PMultiMap::from_sorted_vec(vec![(1, 'b'), (1, 'c'), (3, 'z')]);
        let u = a.merge_union(&b);
        assert_eq!(u.total_len(), 5, "a,b,c under 1; x under 2; z under 3");
        assert_eq!(u.get(&1).unwrap().len(), 3);
        let i = a.merge_intersection(&b);
        assert_eq!(i.key_len(), 1);
        assert!(i.get(&1).unwrap().contains(&'b'));
        assert_eq!(i.total_len(), 1);
        let d = a.merge_difference(&b);
        assert_eq!(d.total_len(), 2, "1→a survives, 2→x survives");
        assert!(d.get(&1).unwrap().contains(&'a'));
        assert!(!d.get(&1).unwrap().contains(&'b'));
        // equivalence with the per-pair insert path
        let mut ref_union = a.clone();
        for (k, v) in b.iter_flat() {
            ref_union = ref_union.insert(*k, *v).0;
        }
        assert_eq!(u.total_len(), ref_union.total_len());
        let pairs: Vec<_> = u.iter_flat().map(|(k, v)| (*k, *v)).collect();
        let ref_pairs: Vec<_> = ref_union.iter_flat().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, ref_pairs);
    }

    #[test]
    fn iter_flat_orders_pairs() {
        let m = PMultiMap::new()
            .insert(2, 'x')
            .0
            .insert(1, 'b')
            .0
            .insert(1, 'a')
            .0;
        let pairs: Vec<_> = m.iter_flat().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(1, 'a'), (1, 'b'), (2, 'x')]);
    }
}
