//! A persistent ordered map implemented as an AVL tree with `Arc`-shared
//! nodes.
//!
//! Every mutating operation (`insert`, `remove`, ...) returns a *new* map
//! that shares all untouched subtrees with the original. Cloning a map is
//! O(1). This is the backbone of FDM relation functions and database
//! functions: a "snapshot" of a relation is just a clone of its root.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A node of the persistent AVL tree.
///
/// Nodes are immutable once created; rebalancing builds new nodes and reuses
/// (via `Arc`) everything that did not change.
struct Node<K, V> {
    key: K,
    val: V,
    left: Link<K, V>,
    right: Link<K, V>,
    /// Height of the subtree rooted here (leaf = 1).
    height: u8,
    /// Number of entries in the subtree rooted here (order statistics).
    size: usize,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

fn height<K, V>(link: &Link<K, V>) -> u8 {
    link.as_ref().map_or(0, |n| n.height)
}

fn size<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

impl<K: Clone, V: Clone> Node<K, V> {
    fn new(key: K, val: V, left: Link<K, V>, right: Link<K, V>) -> Arc<Self> {
        let height = 1 + height(&left).max(height(&right));
        let size = 1 + size(&left) + size(&right);
        Arc::new(Node {
            key,
            val,
            left,
            right,
            height,
            size,
        })
    }

    fn balance_factor(&self) -> i16 {
        height(&self.left) as i16 - height(&self.right) as i16
    }
}

/// Rebuild a subtree with the given children, restoring the AVL invariant
/// (|balance factor| <= 1) with at most two rotations.
fn balance<K: Clone, V: Clone>(
    key: K,
    val: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Arc<Node<K, V>> {
    let bf = height(&left) as i16 - height(&right) as i16;
    if bf > 1 {
        let l = left.expect("bf > 1 implies left child");
        if l.balance_factor() >= 0 {
            // Left-left: single right rotation.
            let new_right = Node::new(key, val, l.right.clone(), right);
            Node::new(
                l.key.clone(),
                l.val.clone(),
                l.left.clone(),
                Some(new_right),
            )
        } else {
            // Left-right: double rotation through l.right.
            let lr = l
                .right
                .as_ref()
                .expect("bf < 0 implies right child")
                .clone();
            let new_left = Node::new(
                l.key.clone(),
                l.val.clone(),
                l.left.clone(),
                lr.left.clone(),
            );
            let new_right = Node::new(key, val, lr.right.clone(), right);
            Node::new(
                lr.key.clone(),
                lr.val.clone(),
                Some(new_left),
                Some(new_right),
            )
        }
    } else if bf < -1 {
        let r = right.expect("bf < -1 implies right child");
        if r.balance_factor() <= 0 {
            // Right-right: single left rotation.
            let new_left = Node::new(key, val, left, r.left.clone());
            Node::new(
                r.key.clone(),
                r.val.clone(),
                Some(new_left),
                r.right.clone(),
            )
        } else {
            // Right-left: double rotation through r.left.
            let rl = r.left.as_ref().expect("bf > 0 implies left child").clone();
            let new_left = Node::new(key, val, left, rl.left.clone());
            let new_right = Node::new(
                r.key.clone(),
                r.val.clone(),
                rl.right.clone(),
                r.right.clone(),
            );
            Node::new(
                rl.key.clone(),
                rl.val.clone(),
                Some(new_left),
                Some(new_right),
            )
        }
    } else {
        Node::new(key, val, left, right)
    }
}

/// Builds a height-balanced subtree from the next `n` in-order entries of
/// `it` (the O(n) half of [`PMap::from_sorted_vec`]). Splitting entries in
/// half at every level bounds the height by `ceil(log2(n + 1))` and keeps
/// every balance factor in `{-1, 0, 1}`.
fn build_balanced<K: Clone, V: Clone, I: Iterator<Item = (K, V)>>(
    it: &mut I,
    n: usize,
) -> Link<K, V> {
    if n == 0 {
        return None;
    }
    let left = build_balanced(it, n / 2);
    let (key, val) = it.next().expect("iterator holds n entries");
    let right = build_balanced(it, n - n / 2 - 1);
    Some(Node::new(key, val, left, right))
}

/// A persistent (immutable, structurally shared) ordered map.
///
/// * `clone` is O(1) and shares the whole tree.
/// * `insert` / `remove` are O(log n) time and allocation and return a new
///   map; the receiver is unchanged.
/// * Iteration is in key order.
///
/// # Examples
///
/// ```
/// use fdm_storage::PMap;
///
/// let m0: PMap<i64, &str> = PMap::new();
/// let m1 = m0.insert(1, "one").0;
/// let m2 = m1.insert(2, "two").0;
/// // m1 is an unchanged snapshot:
/// assert_eq!(m1.len(), 1);
/// assert_eq!(m2.get(&2), Some(&"two"));
/// assert_eq!(m1.get(&2), None);
/// ```
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None }
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Height of the underlying tree (diagnostics; 0 for an empty map).
    pub fn tree_height(&self) -> usize {
        height(&self.root) as usize
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Looks up `key`, returning a reference to its value if present.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return Some(&n.val),
            }
        }
        None
    }

    /// `true` if `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Returns the entry with the smallest key.
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(l) = cur.left.as_deref() {
            cur = l;
        }
        Some((&cur.key, &cur.val))
    }

    /// Returns the entry with the largest key.
    pub fn last(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_deref()?;
        while let Some(r) = cur.right.as_deref() {
            cur = r;
        }
        Some((&cur.key, &cur.val))
    }

    /// Returns the `i`-th entry in key order (0-based), using subtree sizes.
    pub fn nth(&self, mut i: usize) -> Option<(&K, &V)> {
        if i >= self.len() {
            return None;
        }
        let mut cur = self.root.as_deref()?;
        loop {
            let ls = size(&cur.left);
            match i.cmp(&ls) {
                Ordering::Less => cur = cur.left.as_deref()?,
                Ordering::Equal => return Some((&cur.key, &cur.val)),
                Ordering::Greater => {
                    i -= ls + 1;
                    cur = cur.right.as_deref()?;
                }
            }
        }
    }

    /// Returns the rank of `key`: the number of entries with keys strictly
    /// smaller. If `key` is absent this is its insertion position.
    pub fn rank<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        let mut r = 0usize;
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Equal => return r + size(&n.left),
                Ordering::Greater => {
                    r += size(&n.left) + 1;
                    cur = n.right.as_deref();
                }
            }
        }
        r
    }

    /// Inserts `key -> val`, returning the new map and the previous value
    /// for `key` if one existed. The receiver is unchanged.
    pub fn insert(&self, key: K, val: V) -> (Self, Option<V>) {
        fn go<K: Ord + Clone, V: Clone>(
            link: &Link<K, V>,
            key: K,
            val: V,
        ) -> (Arc<Node<K, V>>, Option<V>) {
            match link {
                None => (Node::new(key, val, None, None), None),
                Some(n) => match key.cmp(&n.key) {
                    Ordering::Less => {
                        let (nl, old) = go(&n.left, key, val);
                        (
                            balance(n.key.clone(), n.val.clone(), Some(nl), n.right.clone()),
                            old,
                        )
                    }
                    Ordering::Greater => {
                        let (nr, old) = go(&n.right, key, val);
                        (
                            balance(n.key.clone(), n.val.clone(), n.left.clone(), Some(nr)),
                            old,
                        )
                    }
                    Ordering::Equal => (
                        Node::new(key, val, n.left.clone(), n.right.clone()),
                        Some(n.val.clone()),
                    ),
                },
            }
        }
        let (root, old) = go(&self.root, key, val);
        (PMap { root: Some(root) }, old)
    }

    /// Removes `key`, returning the new map and the removed value if it was
    /// present. The receiver is unchanged.
    pub fn remove<Q>(&self, key: &Q) -> (Self, Option<V>)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        /// Removes the minimum entry of a non-empty subtree, returning the
        /// remaining subtree and the removed (key, value).
        fn take_min<K: Ord + Clone, V: Clone>(n: &Arc<Node<K, V>>) -> (Link<K, V>, (K, V)) {
            match &n.left {
                None => (n.right.clone(), (n.key.clone(), n.val.clone())),
                Some(l) => {
                    let (rest, min) = take_min(l);
                    (
                        Some(balance(n.key.clone(), n.val.clone(), rest, n.right.clone())),
                        min,
                    )
                }
            }
        }
        fn go<K, V, Q>(link: &Link<K, V>, key: &Q) -> Option<(Link<K, V>, V)>
        where
            K: Ord + Clone + Borrow<Q>,
            V: Clone,
            Q: Ord + ?Sized,
        {
            let n = link.as_ref()?;
            match key.cmp(n.key.borrow()) {
                Ordering::Less => {
                    let (nl, old) = go(&n.left, key)?;
                    Some((
                        Some(balance(n.key.clone(), n.val.clone(), nl, n.right.clone())),
                        old,
                    ))
                }
                Ordering::Greater => {
                    let (nr, old) = go(&n.right, key)?;
                    Some((
                        Some(balance(n.key.clone(), n.val.clone(), n.left.clone(), nr)),
                        old,
                    ))
                }
                Ordering::Equal => {
                    let old = n.val.clone();
                    let merged = match (&n.left, &n.right) {
                        (None, r) => r.clone(),
                        (l, None) => l.clone(),
                        (Some(_), Some(r)) => {
                            let (rest, (sk, sv)) = take_min(r);
                            Some(balance(sk, sv, n.left.clone(), rest))
                        }
                    };
                    Some((merged, old))
                }
            }
        }
        match go(&self.root, key) {
            None => (self.clone(), None),
            Some((root, old)) => (PMap { root }, Some(old)),
        }
    }

    /// Applies `f` to the value at `key` if present; returns the new map and
    /// whether the key existed.
    pub fn update_with<Q, F>(&self, key: &Q, f: F) -> (Self, bool)
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
        F: FnOnce(&V) -> V,
    {
        match self.get(key) {
            None => (self.clone(), false),
            Some(v) => {
                // We need an owned key to reinsert; find it via iteration of
                // the search path. `get_key_value` style:
                let k = self.get_key(key).expect("present").clone();
                (self.insert(k, f(v)).0, true)
            }
        }
    }

    fn get_key<Q>(&self, key: &Q) -> Option<&K>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(n.key.borrow()) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return Some(&n.key),
            }
        }
        None
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(&self.root, None, None)
    }

    /// Iterates the entries whose keys lie in `[lo, hi]` (inclusive bounds,
    /// either side optional) in ascending key order.
    pub fn range<'a>(&'a self, lo: Option<&'a K>, hi: Option<&'a K>) -> Iter<'a, K, V> {
        Iter::new(&self.root, lo, hi)
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Builds a map from an iterator of pairs; later duplicates win.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = (K, V)>>(it: I) -> Self {
        let mut m = PMap::new();
        for (k, v) in it {
            m = m.insert(k, v).0;
        }
        m
    }

    /// Builds a map in **O(n)** from entries sorted by strictly ascending
    /// key.
    ///
    /// This is the bulk-construction fast path: instead of n root-to-leaf
    /// insertions (O(n log n) time and `Arc` allocation), the balanced tree
    /// is assembled bottom-up with exactly one node allocation per entry.
    /// The resulting tree is height-balanced (every subtree splits its
    /// entries in half), so all AVL invariants hold.
    ///
    /// Ordering is the caller's contract; it is checked with a
    /// `debug_assert` so release builds pay nothing.
    pub fn from_sorted_vec(entries: Vec<(K, V)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted_vec: keys must be strictly ascending"
        );
        let n = entries.len();
        let mut it = entries.into_iter();
        let root = build_balanced(&mut it, n);
        debug_assert!(it.next().is_none());
        PMap { root }
    }

    /// [`Self::from_sorted_vec`] from any iterator of strictly-ascending
    /// entries (collected once, then built in O(n)).
    pub fn from_sorted_iter<I: IntoIterator<Item = (K, V)>>(it: I) -> Self {
        Self::from_sorted_vec(it.into_iter().collect())
    }

    /// O(n + m) **merge union**: every key of either map, with `self`'s
    /// value winning when a key appears in both (left bias).
    ///
    /// This is the merge-style counterpart of inserting `other`'s entries
    /// one by one (O(m log n) time and allocation): both trees are walked
    /// in key order with two pointers and the result is bulk-built via
    /// [`Self::from_sorted_vec`].
    pub fn merge_union(&self, other: &Self) -> Self {
        self.merge_union_with(other, |_, a, _| a.clone())
    }

    /// [`Self::merge_union`] with an explicit combiner for keys present in
    /// both maps: `combine(key, self_value, other_value)` produces the
    /// value stored under the shared key.
    pub fn merge_union_with(&self, other: &Self, mut combine: impl FnMut(&K, &V, &V) -> V) -> Self {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut out: Vec<(K, V)> = Vec::with_capacity(self.len() + other.len());
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
                    Ordering::Less => {
                        let (k, v) = a.next().expect("peeked");
                        out.push((k.clone(), v.clone()));
                    }
                    Ordering::Greater => {
                        let (k, v) = b.next().expect("peeked");
                        out.push((k.clone(), v.clone()));
                    }
                    Ordering::Equal => {
                        let (k, va) = a.next().expect("peeked");
                        let (_, vb) = b.next().expect("peeked");
                        out.push((k.clone(), combine(k, va, vb)));
                    }
                },
                (Some(_), None) => {
                    let (k, v) = a.next().expect("peeked");
                    out.push((k.clone(), v.clone()));
                }
                (None, Some(_)) => {
                    let (k, v) = b.next().expect("peeked");
                    out.push((k.clone(), v.clone()));
                }
                (None, None) => break,
            }
        }
        Self::from_sorted_vec(out)
    }

    /// O(n + m) **merge intersection**: the keys present in both maps,
    /// carrying `self`'s values.
    pub fn merge_intersection(&self, other: &Self) -> Self {
        self.merge_intersection_with(other, |_, a, _| Some(a.clone()))
    }

    /// [`Self::merge_intersection`] with a per-key decision:
    /// `combine(key, self_value, other_value)` returns the value to keep,
    /// or `None` to drop the key (e.g. when the two values are not
    /// considered equal by the caller's notion of identity).
    pub fn merge_intersection_with(
        &self,
        other: &Self,
        mut combine: impl FnMut(&K, &V, &V) -> Option<V>,
    ) -> Self {
        let mut out: Vec<(K, V)> = Vec::new();
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        while let (Some((ka, _)), Some((kb, _))) = (a.peek(), b.peek()) {
            match ka.cmp(kb) {
                Ordering::Less => {
                    a.next();
                }
                Ordering::Greater => {
                    b.next();
                }
                Ordering::Equal => {
                    let (k, va) = a.next().expect("peeked");
                    let (_, vb) = b.next().expect("peeked");
                    if let Some(v) = combine(k, va, vb) {
                        out.push((k.clone(), v));
                    }
                }
            }
        }
        Self::from_sorted_vec(out)
    }

    /// O(n + m) **merge difference**: the entries of `self` whose keys are
    /// absent from `other`.
    pub fn merge_difference(&self, other: &Self) -> Self {
        self.merge_difference_with(other, |_, _, _| None)
    }

    /// [`Self::merge_difference`] with a per-key decision for keys present
    /// in both maps: `combine(key, self_value, other_value)` returns
    /// `Some(value)` to keep the key anyway (e.g. a residual after a
    /// value-level difference) or `None` to drop it.
    pub fn merge_difference_with(
        &self,
        other: &Self,
        mut combine: impl FnMut(&K, &V, &V) -> Option<V>,
    ) -> Self {
        if other.is_empty() {
            return self.clone();
        }
        let mut out: Vec<(K, V)> = Vec::new();
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
                    Ordering::Less => {
                        let (k, v) = a.next().expect("peeked");
                        out.push((k.clone(), v.clone()));
                    }
                    Ordering::Greater => {
                        b.next();
                    }
                    Ordering::Equal => {
                        let (k, va) = a.next().expect("peeked");
                        let (_, vb) = b.next().expect("peeked");
                        if let Some(v) = combine(k, va, vb) {
                            out.push((k.clone(), v));
                        }
                    }
                },
                (Some(_), None) => {
                    let (k, v) = a.next().expect("peeked");
                    out.push((k.clone(), v.clone()));
                }
                (None, _) => break,
            }
        }
        Self::from_sorted_vec(out)
    }

    /// Checks the AVL and size invariants of the whole tree (test support).
    pub fn check_invariants(&self) -> bool {
        fn go<K: Ord, V>(link: &Link<K, V>, lo: Option<&K>, hi: Option<&K>) -> Option<(u8, usize)> {
            match link {
                None => Some((0, 0)),
                Some(n) => {
                    if let Some(lo) = lo {
                        if n.key <= *lo {
                            return None;
                        }
                    }
                    if let Some(hi) = hi {
                        if n.key >= *hi {
                            return None;
                        }
                    }
                    let (lh, ls) = go(&n.left, lo, Some(&n.key))?;
                    let (rh, rs) = go(&n.right, Some(&n.key), hi)?;
                    if (lh as i16 - rh as i16).abs() > 1 {
                        return None;
                    }
                    let h = 1 + lh.max(rh);
                    let s = 1 + ls + rs;
                    if h != n.height || s != n.size {
                        return None;
                    }
                    Some((h, s))
                }
            }
        }
        go(&self.root, None, None).is_some()
    }
}

impl<K: Ord + Clone + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<K: Ord + Clone, V: Clone + Eq> Eq for PMap<K, V> {}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(it: I) -> Self {
        PMap::from_iter(it)
    }
}

/// In-order iterator over a [`PMap`] with optional inclusive bounds.
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    lo: Option<&'a K>,
    hi: Option<&'a K>,
}

impl<'a, K: Ord, V> Iter<'a, K, V> {
    fn new(root: &'a Link<K, V>, lo: Option<&'a K>, hi: Option<&'a K>) -> Self {
        let mut it = Iter {
            stack: Vec::new(),
            lo,
            hi,
        };
        it.push_left(root.as_deref());
        it
    }

    /// Pushes the left spine of `node`, skipping subtrees entirely below
    /// the lower bound.
    fn push_left(&mut self, mut node: Option<&'a Node<K, V>>) {
        while let Some(n) = node {
            match self.lo {
                Some(lo) if n.key < *lo => node = n.right.as_deref(),
                _ => {
                    self.stack.push(n);
                    node = n.left.as_deref();
                }
            }
        }
    }
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        if let Some(hi) = self.hi {
            if n.key > *hi {
                self.stack.clear();
                return None;
            }
        }
        self.push_left(n.right.as_deref());
        Some((&n.key, &n.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_basics() {
        let m: PMap<i32, i32> = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert_eq!(m.first(), None);
        assert_eq!(m.last(), None);
        assert_eq!(m.nth(0), None);
        assert!(m.check_invariants());
    }

    #[test]
    fn insert_get_overwrite() {
        let m = PMap::new().insert(1, "a").0;
        let (m2, old) = m.insert(1, "b");
        assert_eq!(old, Some("a"));
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m2.get(&1), Some(&"b"));
        assert_eq!(m2.len(), 1);
    }

    #[test]
    fn snapshots_are_independent() {
        let base = PMap::from_iter((0..100).map(|i| (i, i * 10)));
        let snap = base.clone();
        let (modified, _) = base.insert(50, 999);
        let (removed, _) = modified.remove(&10);
        assert_eq!(snap.get(&50), Some(&500));
        assert_eq!(modified.get(&50), Some(&999));
        assert_eq!(removed.get(&10), None);
        assert_eq!(snap.get(&10), Some(&100));
        assert_eq!(snap.len(), 100);
        assert_eq!(removed.len(), 99);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let m = PMap::from_iter((0..1024).map(|i| (i, ())));
        assert!(m.check_invariants());
        // AVL height bound: 1.44 * log2(n+2)
        assert!(
            m.tree_height() <= 15,
            "height {} too large",
            m.tree_height()
        );
    }

    #[test]
    fn descending_insert_stays_balanced() {
        let m = PMap::from_iter((0..1024).rev().map(|i| (i, ())));
        assert!(m.check_invariants());
        assert!(m.tree_height() <= 15);
    }

    #[test]
    fn iteration_is_sorted() {
        let m = PMap::from_iter([(3, 'c'), (1, 'a'), (2, 'b')]);
        let items: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(items, vec![(1, 'a'), (2, 'b'), (3, 'c')]);
    }

    #[test]
    fn range_scan_bounds() {
        let m = PMap::from_iter((0..100).map(|i| (i, ())));
        let lo = 10;
        let hi = 20;
        let keys: Vec<_> = m.range(Some(&lo), Some(&hi)).map(|(k, _)| *k).collect();
        assert_eq!(keys, (10..=20).collect::<Vec<_>>());
        let open_lo: Vec<_> = m.range(None, Some(&3)).map(|(k, _)| *k).collect();
        assert_eq!(open_lo, vec![0, 1, 2, 3]);
        let open_hi: Vec<_> = m.range(Some(&97), None).map(|(k, _)| *k).collect();
        assert_eq!(open_hi, vec![97, 98, 99]);
    }

    #[test]
    fn remove_all_elements() {
        let mut m = PMap::from_iter((0..200).map(|i| (i, i)));
        for i in 0..200 {
            let (next, old) = m.remove(&i);
            assert_eq!(old, Some(i));
            m = next;
            assert!(m.check_invariants());
        }
        assert!(m.is_empty());
    }

    #[test]
    fn remove_absent_is_noop() {
        let m = PMap::from_iter([(1, 'a')]);
        let (m2, old) = m.remove(&42);
        assert_eq!(old, None);
        assert_eq!(m2.len(), 1);
    }

    #[test]
    fn nth_and_rank_agree() {
        let m = PMap::from_iter((0..50).map(|i| (i * 2, ())));
        for i in 0..50 {
            let (k, _) = m.nth(i).unwrap();
            assert_eq!(m.rank(k), i);
        }
        // rank of an absent key = insertion position
        assert_eq!(m.rank(&1), 1);
        assert_eq!(m.rank(&-5), 0);
        assert_eq!(m.rank(&1000), 50);
    }

    #[test]
    fn update_with_applies_in_new_version_only() {
        let m = PMap::from_iter([(7, 10)]);
        let (m2, hit) = m.update_with(&7, |v| v + 1);
        assert!(hit);
        assert_eq!(m.get(&7), Some(&10));
        assert_eq!(m2.get(&7), Some(&11));
        let (m3, miss) = m.update_with(&8, |v| v + 1);
        assert!(!miss);
        assert_eq!(m3.len(), 1);
    }

    #[test]
    fn borrowed_key_lookup() {
        let m: PMap<String, i32> = PMap::from_iter([("alice".to_string(), 1)]);
        assert_eq!(m.get("alice"), Some(&1));
        assert!(m.contains_key("alice"));
        assert!(!m.contains_key("bob"));
    }

    #[test]
    fn merge_union_is_left_biased() {
        let a = PMap::from_iter([(1, 'a'), (3, 'a'), (5, 'a')]);
        let b = PMap::from_iter([(2, 'b'), (3, 'b'), (6, 'b')]);
        let u = a.merge_union(&b);
        assert!(u.check_invariants());
        let items: Vec<_> = u.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(
            items,
            vec![(1, 'a'), (2, 'b'), (3, 'a'), (5, 'a'), (6, 'b')],
            "shared key 3 takes the left value"
        );
        // empty shortcuts
        let e: PMap<i32, char> = PMap::new();
        assert_eq!(a.merge_union(&e), a);
        assert_eq!(e.merge_union(&b), b);
    }

    #[test]
    fn merge_intersection_and_difference() {
        let a = PMap::from_iter([(1, 'a'), (3, 'a'), (5, 'a')]);
        let b = PMap::from_iter([(3, 'b'), (5, 'b'), (7, 'b')]);
        let i = a.merge_intersection(&b);
        assert_eq!(
            i.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            vec![(3, 'a'), (5, 'a')],
            "self's values survive"
        );
        let d = a.merge_difference(&b);
        assert_eq!(
            d.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            vec![(1, 'a')]
        );
        assert!(i.check_invariants() && d.check_invariants());
    }

    #[test]
    fn merge_with_variants_decide_per_key() {
        let a = PMap::from_iter([(1, 10), (2, 20), (3, 30)]);
        let b = PMap::from_iter([(2, 2), (3, 300)]);
        let u = a.merge_union_with(&b, |_, x, y| x + y);
        assert_eq!(u.get(&2), Some(&22));
        assert_eq!(u.get(&1), Some(&10));
        let i = a.merge_intersection_with(&b, |_, x, y| (*x > *y).then_some(*x));
        assert_eq!(
            i.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![2],
            "3 dropped: 30 < 300"
        );
        let d = a.merge_difference_with(&b, |_, x, y| (*x > *y).then(|| x - y));
        assert_eq!(
            d.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            vec![(1, 10), (2, 18)]
        );
    }

    #[test]
    fn equality_is_structural_on_contents() {
        let a = PMap::from_iter([(1, 'x'), (2, 'y')]);
        let b = PMap::from_iter([(2, 'y'), (1, 'x')]);
        assert_eq!(a, b);
        let c = b.insert(3, 'z').0;
        assert_ne!(a, c);
    }
}
