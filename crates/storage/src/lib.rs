//! # fdm-storage
//!
//! Storage substrate for the FDM/FQL engine: **persistent** (immutable,
//! structurally shared) ordered containers plus a versioned root cell.
//!
//! The paper's Figure 10/11 semantics — "changes are applied immediately to
//! the snapshot of the transaction" — require that taking a snapshot of an
//! arbitrarily large database is cheap and that updates do not disturb
//! readers of older snapshots. Persistent balanced trees give exactly that:
//! a snapshot is an `Arc` clone of a root pointer (O(1)), and every update
//! produces a new root sharing all untouched subtrees (O(log n) allocation).
//!
//! Provided containers:
//!
//! * [`PMap`] — persistent ordered map (AVL tree with `Arc`-shared nodes,
//!   order statistics, range scans).
//! * [`PSet`] — persistent ordered set, a thin wrapper over [`PMap`].
//! * [`PMultiMap`] — persistent ordered multimap (`PMap<K, PSet<V>>`),
//!   the shape of a non-unique secondary index (the paper's `R3` relation
//!   function returning a *set* of tuple functions, §2.4).
//! * [`VersionedRoot`] — a concurrent cell holding the current committed
//!   root, supporting lock-free-ish snapshot loads and atomic
//!   compare-and-swap installs for first-committer-wins commit protocols.
//!
//! ## Bulk construction fast path
//!
//! Point inserts are for point workloads. Building an n-entry container by
//! repeated `insert` costs O(n log n) time and allocates a fresh
//! root-to-leaf path per entry; query operators that emit whole results
//! should instead hand a sorted run to `PMap::from_sorted_vec` /
//! `PSet::from_sorted_vec` / `PMultiMap::from_sorted_vec` (or the
//! `from_sorted_iter` variants), which assemble a height-balanced tree
//! bottom-up in **O(n)** with exactly one node allocation per entry. The
//! ordering contract is checked by `debug_assert` only, so release builds
//! pay nothing. `fdm-core`'s `RelationBuilder` is the relation-level
//! wrapper every FQL operator builds its output through.

#![warn(missing_docs)]

pub mod pmap;
pub mod pmultimap;
pub mod pset;
pub mod version;

pub use pmap::PMap;
pub use pmultimap::PMultiMap;
pub use pset::PSet;
pub use version::{
    splitmix64, Backoff, SharedRoot, Snapshot, Version, VersionConflict, VersionedRoot,
};
