//! Property-based differential tests: `PMap` against `std::collections::BTreeMap`
//! as the reference model, plus structural-sharing/snapshot properties.

use fdm_storage::{PMap, PMultiMap, PSet};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A random operation applied to both the PMap and the model.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64),
    UpdateWith(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>().prop_map(|k| k % 64), any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<i64>().prop_map(|k| k % 64)).prop_map(Op::Remove),
        (any::<i64>().prop_map(|k| k % 64), any::<i64>()).prop_map(|(k, d)| Op::UpdateWith(k, d)),
    ]
}

proptest! {
    #[test]
    fn pmap_matches_btreemap(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        let mut map: PMap<i64, i64> = PMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let (next, old) = map.insert(k, v);
                    prop_assert_eq!(old, model.insert(k, v));
                    map = next;
                }
                Op::Remove(k) => {
                    let (next, old) = map.remove(&k);
                    prop_assert_eq!(old, model.remove(&k));
                    map = next;
                }
                Op::UpdateWith(k, d) => {
                    let (next, hit) = map.update_with(&k, |v| v.wrapping_add(d));
                    let model_hit = model.contains_key(&k);
                    if model_hit {
                        *model.get_mut(&k).unwrap() = model[&k].wrapping_add(d);
                    }
                    prop_assert_eq!(hit, model_hit);
                    map = next;
                }
            }
            prop_assert!(map.check_invariants());
            prop_assert_eq!(map.len(), model.len());
        }
        let got: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pmap_range_matches_btreemap(
        entries in prop::collection::btree_map(-100i64..100, any::<i64>(), 0..100),
        lo in -120i64..120,
        hi in -120i64..120,
    ) {
        let map = PMap::from_iter(entries.clone());
        let got: Vec<_> = map.range(Some(&lo), Some(&hi)).map(|(k, _)| *k).collect();
        if lo > hi {
            // An inverted range is simply empty (BTreeMap::range would panic).
            prop_assert!(got.is_empty());
        } else {
            let want: Vec<_> = entries.range(lo..=hi).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn snapshots_are_immutable(
        base in prop::collection::btree_map(-50i64..50, any::<i64>(), 1..50),
        ops in prop::collection::vec(op_strategy(), 1..50),
    ) {
        let snapshot = PMap::from_iter(base.clone());
        let mut working = snapshot.clone();
        for op in ops {
            working = match op {
                Op::Insert(k, v) => working.insert(k, v).0,
                Op::Remove(k) => working.remove(&k).0,
                Op::UpdateWith(k, d) => working.update_with(&k, |v| v.wrapping_add(d)).0,
            };
        }
        // The original snapshot still equals the base model exactly.
        let got: Vec<_> = snapshot.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = base.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pmap_nth_matches_sorted_order(
        entries in prop::collection::btree_map(any::<i64>(), any::<i64>(), 0..80)
    ) {
        let map = PMap::from_iter(entries.clone());
        let sorted: Vec<_> = entries.keys().copied().collect();
        for (i, k) in sorted.iter().enumerate() {
            prop_assert_eq!(map.nth(i).map(|(k, _)| *k), Some(*k));
            prop_assert_eq!(map.rank(k), i);
        }
        prop_assert_eq!(map.nth(sorted.len()), None);
    }

    #[test]
    fn pset_ops_match_btreeset(
        a in prop::collection::btree_set(-40i64..40, 0..40),
        b in prop::collection::btree_set(-40i64..40, 0..40),
    ) {
        let pa = PSet::from_iter(a.iter().copied());
        let pb = PSet::from_iter(b.iter().copied());
        let union: Vec<_> = pa.union(&pb).iter().copied().collect();
        let inter: Vec<_> = pa.intersection(&pb).iter().copied().collect();
        let diff: Vec<_> = pa.difference(&pb).iter().copied().collect();
        prop_assert_eq!(union, a.union(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(inter, a.intersection(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(diff, a.difference(&b).copied().collect::<Vec<_>>());
    }

    #[test]
    fn from_sorted_vec_equals_repeated_insert(
        entries in prop::collection::btree_map(any::<i64>(), any::<i64>(), 0..200)
    ) {
        let sorted: Vec<(i64, i64)> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let bulk = PMap::from_sorted_vec(sorted.clone());
        let incremental = PMap::from_iter(sorted.clone());
        // same entries, in the same order, with the same len
        prop_assert_eq!(bulk.len(), incremental.len());
        let b: Vec<_> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let i: Vec<_> = incremental.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(&b, &i);
        prop_assert_eq!(b, sorted);
        prop_assert_eq!(bulk, incremental);
        // AVL height/size invariants hold on the bulk-built tree, and its
        // height respects the AVL bound
        prop_assert!(bulk.check_invariants());
        if !bulk.is_empty() {
            let bound = (1.45 * ((bulk.len() + 2) as f64).log2()).ceil() as usize;
            prop_assert!(bulk.tree_height() <= bound,
                "height {} exceeds AVL bound {bound} for {} entries",
                bulk.tree_height(), bulk.len());
        }
        // point lookups and order statistics agree
        for (i, (k, v)) in bulk.iter().enumerate() {
            prop_assert_eq!(incremental.get(k), Some(v));
            prop_assert_eq!(bulk.nth(i), Some((k, v)));
            prop_assert_eq!(bulk.rank(k), i);
        }
    }

    #[test]
    fn bulk_built_map_mutates_like_any_other(
        entries in prop::collection::btree_map(-60i64..60, any::<i64>(), 0..80),
        ops in prop::collection::vec(op_strategy(), 0..60),
    ) {
        // a bulk-built tree must be a first-class PMap: inserts/removes on
        // top of it keep all invariants and match the model
        let mut model: BTreeMap<i64, i64> = entries.clone();
        let mut map = PMap::from_sorted_vec(entries.into_iter().collect());
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let (next, old) = map.insert(k, v);
                    prop_assert_eq!(old, model.insert(k, v));
                    map = next;
                }
                Op::Remove(k) => {
                    let (next, old) = map.remove(&k);
                    prop_assert_eq!(old, model.remove(&k));
                    map = next;
                }
                Op::UpdateWith(k, d) => {
                    let (next, _) = map.update_with(&k, |v| v.wrapping_add(d));
                    if let Some(v) = model.get_mut(&k) {
                        *v = v.wrapping_add(d);
                    }
                    map = next;
                }
            }
            prop_assert!(map.check_invariants());
        }
        let got: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pset_from_sorted_equals_inserts(
        items in prop::collection::btree_set(any::<i64>(), 0..150)
    ) {
        let sorted: Vec<i64> = items.iter().copied().collect();
        let bulk = PSet::from_sorted_vec(sorted.clone());
        let incremental = PSet::from_iter(sorted.clone());
        prop_assert_eq!(bulk.len(), incremental.len());
        let b: Vec<_> = bulk.iter().copied().collect();
        prop_assert_eq!(b, sorted);
        prop_assert_eq!(bulk, incremental);
    }

    #[test]
    fn pmultimap_from_sorted_equals_inserts(
        pairs in prop::collection::btree_set(((-20i64..20), (-20i64..20)), 0..120)
    ) {
        let sorted: Vec<(i64, i64)> = pairs.iter().copied().collect();
        let bulk = PMultiMap::from_sorted_vec(sorted.clone());
        let mut incremental: PMultiMap<i64, i64> = PMultiMap::new();
        for (k, v) in &sorted {
            incremental = incremental.insert(*k, *v).0;
        }
        prop_assert_eq!(bulk.total_len(), incremental.total_len());
        prop_assert_eq!(bulk.key_len(), incremental.key_len());
        let b: Vec<_> = bulk.iter_flat().map(|(k, v)| (*k, *v)).collect();
        let i: Vec<_> = incremental.iter_flat().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(&b, &i);
        prop_assert_eq!(b, sorted);
    }

    #[test]
    fn pset_merge_setops_match_per_element(
        a in prop::collection::btree_set(-60i64..60, 0..60),
        b in prop::collection::btree_set(-60i64..60, 0..60),
    ) {
        let pa = PSet::from_iter(a.iter().copied());
        let pb = PSet::from_iter(b.iter().copied());
        // the O(n) two-pointer merges must be observably identical to the
        // per-element insert/lookup versions
        prop_assert_eq!(pa.merge_union(&pb), pa.union(&pb));
        prop_assert_eq!(pa.merge_intersection(&pb), pa.intersection(&pb));
        prop_assert_eq!(pa.merge_difference(&pb), pa.difference(&pb));
        prop_assert_eq!(pb.merge_union(&pa), pb.union(&pa));
        prop_assert_eq!(pb.merge_intersection(&pa), pb.intersection(&pa));
        prop_assert_eq!(pb.merge_difference(&pa), pb.difference(&pa));
    }

    #[test]
    fn pmap_merge_setops_match_model(
        a in prop::collection::btree_map(-40i64..40, any::<i64>(), 0..50),
        b in prop::collection::btree_map(-40i64..40, any::<i64>(), 0..50),
    ) {
        let pa = PMap::from_iter(a.clone());
        let pb = PMap::from_iter(b.clone());
        // union: left value wins on shared keys
        let mut want_union = b.clone();
        want_union.extend(a.clone());
        let got: Vec<_> = pa.merge_union(&pb).iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want_union.into_iter().collect::<Vec<_>>());
        // intersection: shared keys, left values
        let got: Vec<_> = pa
            .merge_intersection(&pb)
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        let want: Vec<_> = a
            .iter()
            .filter(|(k, _)| b.contains_key(k))
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(got, want);
        // difference: left keys absent from right
        let got: Vec<_> = pa
            .merge_difference(&pb)
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        let want: Vec<_> = a
            .iter()
            .filter(|(k, _)| !b.contains_key(k))
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(got, want);
        prop_assert!(pa.merge_union(&pb).check_invariants());
        prop_assert!(pa.merge_intersection(&pb).check_invariants());
        prop_assert!(pa.merge_difference(&pb).check_invariants());
    }

    #[test]
    fn pmultimap_merge_setops_match_per_pair(
        pa in prop::collection::vec(((-15i64..15), (-15i64..15)), 0..80),
        pb in prop::collection::vec(((-15i64..15), (-15i64..15)), 0..80),
    ) {
        let mut a: PMultiMap<i64, i64> = PMultiMap::new();
        for (k, v) in pa.iter().copied() {
            a = a.insert(k, v).0;
        }
        let mut b: PMultiMap<i64, i64> = PMultiMap::new();
        for (k, v) in pb.iter().copied() {
            b = b.insert(k, v).0;
        }
        // union ≡ inserting every pair of b into a
        let mut want_union = a.clone();
        for (k, v) in b.iter_flat() {
            want_union = want_union.insert(*k, *v).0;
        }
        let u = a.merge_union(&b);
        prop_assert_eq!(u.total_len(), want_union.total_len());
        prop_assert_eq!(
            u.iter_flat().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            want_union.iter_flat().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
        // intersection / difference ≡ pair-level set semantics
        let a_pairs: BTreeSet<(i64, i64)> = a.iter_flat().map(|(k, v)| (*k, *v)).collect();
        let b_pairs: BTreeSet<(i64, i64)> = b.iter_flat().map(|(k, v)| (*k, *v)).collect();
        let i = a.merge_intersection(&b);
        prop_assert_eq!(
            i.iter_flat().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            a_pairs.intersection(&b_pairs).copied().collect::<Vec<_>>()
        );
        let d = a.merge_difference(&b);
        prop_assert_eq!(
            d.iter_flat().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            a_pairs.difference(&b_pairs).copied().collect::<Vec<_>>()
        );
        let itotal: usize = i.iter().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(i.total_len(), itotal);
        let dtotal: usize = d.iter().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(d.total_len(), dtotal);
    }

    #[test]
    fn pmultimap_matches_model(
        pairs in prop::collection::vec(((-20i64..20), (-20i64..20)), 0..120)
    ) {
        let mut model: BTreeMap<i64, BTreeSet<i64>> = BTreeMap::new();
        let mut mm: PMultiMap<i64, i64> = PMultiMap::new();
        for (k, v) in pairs {
            let (next, was_new) = mm.insert(k, v);
            let model_new = model.entry(k).or_default().insert(v);
            prop_assert_eq!(was_new, model_new);
            mm = next;
        }
        let total: usize = model.values().map(|s| s.len()).sum();
        prop_assert_eq!(mm.total_len(), total);
        prop_assert_eq!(mm.key_len(), model.len());
        for (k, set) in &model {
            let got: Vec<_> = mm.get(k).unwrap().iter().copied().collect();
            let want: Vec<_> = set.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }
}
