//! A concurrent transactional driver over the retail workload: the
//! shared harness behind the txn stress tests and the commit-throughput
//! benchmark series.
//!
//! Everything is deterministic from seeds — each writer thread derives
//! its operation list from `seed + thread`, and commit retry pacing uses
//! the seeded backoff of the store's `CommitPolicy` — so a failing run
//! replays. Concurrency still interleaves nondeterministically; the
//! point is that the *inputs* never vary.

use crate::retail::{generate, to_fdm, RetailConfig};
use crate::zipf::Zipf;
use fdm_core::{RelationBuilder, Result, TupleF, Value};
use fdm_txn::{CommitPolicy, DurabilityConfig, DurabilityError, Store, Transaction, Version};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Builds a transactional [`Store`] over the retail database, with every
/// customer given a `credit` attribute (initially 0) for writers to
/// contend on.
pub fn retail_store(cfg: &RetailConfig) -> Arc<Store> {
    Store::new(retail_db(cfg))
}

/// [`retail_store`] with an explicit in-memory [`fdm_txn::StoreConfig`] —
/// how the serving benchmark and equivalence tests switch the hot-tuple
/// cache on.
pub fn retail_store_with(cfg: &RetailConfig, config: fdm_txn::StoreConfig) -> Arc<Store> {
    Store::with_config(retail_db(cfg), config)
}

/// Builds the retail database (with zeroed `credit`) used by both store
/// constructors below — public so durability-aware tests can construct
/// stores with custom [`fdm_txn::StoreConfig`]s over the same schema.
pub fn retail_db(cfg: &RetailConfig) -> fdm_core::DatabaseF {
    let data = generate(cfg);
    let db = to_fdm(&data);
    let mut customers = RelationBuilder::new("customers", &["cid"]);
    for (cid, name, age, state) in &data.customers {
        customers.push_arc(
            Value::Int(*cid),
            Arc::new(
                TupleF::builder(format!("c{cid}"))
                    .attr("name", name.as_str())
                    .attr("age", *age)
                    .attr("state", *state)
                    .attr("credit", 0i64)
                    .build(),
            ),
        );
    }
    let customers = customers
        .build()
        .expect("generated cids are unique and sorted");
    db.with_relation(customers)
}

/// [`retail_store`], but **durable**: creates a fresh WAL + checkpoint
/// directory per `dcfg` (the version-0 checkpoint is the generated
/// retail database). The crash/restart harnesses open this directory
/// again with [`fdm_txn::Store::open`] after a simulated crash.
pub fn durable_retail_store(
    cfg: &RetailConfig,
    dcfg: DurabilityConfig,
) -> std::result::Result<Arc<Store>, DurabilityError> {
    Store::create(
        retail_db(cfg),
        fdm_txn::StoreConfig {
            durability: Some(dcfg),
            ..fdm_txn::StoreConfig::default()
        },
    )
}

/// What one crash/restart cycle observed.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Version found when the cycle opened the store — 0 on the first
    /// cycle, otherwise whatever recovery rebuilt. With
    /// `SyncPolicy::Always` this must equal the previous cycle's
    /// `committed` (no acknowledged commit lost).
    pub recovered: Version,
    /// Version at the end of this cycle's writer run (before the crash).
    pub committed: Version,
    /// Highest version the WAL had acknowledged durable at that point.
    pub durable: Version,
    /// Total `credit` across customers at the end of the run — the audit
    /// sum the next cycle must recover.
    pub credit: i64,
}

/// Runs `cycles` crash/restart rounds against one durability directory:
/// each round opens the store (creating it on the first round), runs the
/// concurrent writer mix, records the committed/durable versions, then
/// *drops the store without any shutdown protocol* — the in-process
/// equivalent of `kill -9` — and the next round recovers. Returns one
/// report per cycle; the caller asserts monotonicity / no-loss.
pub fn run_restart_cycles(
    dir: &std::path::Path,
    retail: &RetailConfig,
    mixed: &MixedConfig,
    cycles: usize,
) -> std::result::Result<Vec<RestartReport>, DurabilityError> {
    let mut out = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        let store = if cycle == 0 {
            durable_retail_store(retail, DurabilityConfig::new(dir))?
        } else {
            Store::open(dir)?
        };
        let recovered = store.version();
        let cfg = MixedConfig {
            seed: mixed.seed + cycle as u64 * 7919,
            ..mixed.clone()
        };
        run_writers(&store, &cfg);
        let committed = store.version();
        let durable = store.durable_version().unwrap_or(0);
        let db = store.snapshot();
        let rel = db
            .relation("customers")
            .expect("retail store has customers");
        let credit: i64 = rel
            .tuples()
            .expect("unique relation")
            .iter()
            .map(|(_, t)| {
                t.get("credit")
                    .and_then(|v| v.as_int("credit"))
                    .expect("credit is an int")
            })
            .sum();
        out.push(RestartReport {
            recovered,
            committed,
            durable,
            credit,
        });
        drop(store); // no shutdown protocol: the next open() is a recovery
    }
    Ok(out)
}

/// Parameters of a mixed read/write run.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// Concurrent writer threads.
    pub threads: usize,
    /// Committed transactions per writer thread.
    pub ops_per_thread: usize,
    /// Base seed; thread t draws from `seed + t`.
    pub seed: u64,
    /// Zipf exponent for customer choice (0 = uniform; higher = more
    /// write-write contention on head customers).
    pub skew: f64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            threads: 4,
            ops_per_thread: 50,
            seed: 99,
            skew: 0.8,
        }
    }
}

/// One writer operation: add `delta` to a customer's `credit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterOp {
    /// Target customer id.
    pub customer: i64,
    /// Credit delta (1..=9, always positive so sums are easy to audit).
    pub delta: i64,
}

/// One committed transaction, as observed by the thread that ran it.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The version the commit installed.
    pub version: Version,
    /// Which writer thread committed it.
    pub thread: usize,
    /// The operation it applied.
    pub op: WriterOp,
    /// Closure executions the commit took (1 = no conflict).
    pub attempts: usize,
}

/// The deterministic operation list for one writer thread.
pub fn writer_ops(cfg: &MixedConfig, n_customers: usize, thread: usize) -> Vec<WriterOp> {
    let mut rng = StdRng::seed_from_u64(cfg.seed + thread as u64);
    let zipf = Zipf::new(n_customers.max(1), cfg.skew);
    (0..cfg.ops_per_thread)
        .map(|_| WriterOp {
            customer: zipf.sample(&mut rng) as i64 + 1,
            delta: rng.random_range(1..=9),
        })
        .collect()
}

/// Applies one writer op inside a transaction: a read-modify-write of the
/// customer's `credit` (the shape that *must* be re-derived, not
/// replayed, after a conflict).
pub fn apply_writer_op(txn: &mut Transaction, op: &WriterOp) -> Result<()> {
    txn.modify_attr("customers", &Value::Int(op.customer), "credit", |v| {
        v.add(&Value::Int(op.delta))
    })
}

/// Runs `cfg.threads` concurrent writers, each committing its
/// deterministic op list via [`Store::run_with`] (closure re-derivation
/// on conflict). Returns every commit, unordered.
///
/// Panics if any operation fails to commit — with the generous retry
/// budget used here, that is a harness bug, not contention.
pub fn run_writers(store: &Arc<Store>, cfg: &MixedConfig) -> Vec<CommitRecord> {
    let n_customers = store
        .snapshot()
        .relation("customers")
        .expect("retail store has customers")
        .len();
    let policy = CommitPolicy::default().with_max_attempts(256);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|thread| {
                let store = Arc::clone(store);
                let policy = policy.clone();
                let ops = writer_ops(cfg, n_customers, thread);
                s.spawn(move || {
                    ops.into_iter()
                        .map(|op| {
                            let (_, outcome) = store
                                .run_with(&policy, |txn| apply_writer_op(txn, &op))
                                .expect("generous retry budget always lands");
                            CommitRecord {
                                version: outcome.version,
                                thread,
                                op,
                                attempts: outcome.attempts,
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_ops_are_deterministic_per_thread() {
        let cfg = MixedConfig::default();
        assert_eq!(writer_ops(&cfg, 50, 1), writer_ops(&cfg, 50, 1));
        assert_ne!(writer_ops(&cfg, 50, 1), writer_ops(&cfg, 50, 2));
        assert!(writer_ops(&cfg, 50, 0)
            .iter()
            .all(|op| (1..=50).contains(&op.customer) && (1..=9).contains(&op.delta)));
    }

    #[test]
    fn retail_store_has_zeroed_credit() {
        let store = retail_store(&RetailConfig::small());
        let db = store.snapshot();
        let rel = db.relation("customers").unwrap();
        assert_eq!(rel.len(), 50);
        let t = rel.lookup(&Value::Int(1)).unwrap();
        assert_eq!(t.get("credit").unwrap(), Value::Int(0));
        assert!(t.get("name").is_ok(), "original attributes survive");
    }

    #[test]
    fn restart_cycles_recover_every_acknowledged_commit() {
        let dir = std::env::temp_dir().join(format!("fdm-workload-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mixed = MixedConfig {
            threads: 2,
            ops_per_thread: 5,
            ..MixedConfig::default()
        };
        let reports = run_restart_cycles(&dir, &RetailConfig::small(), &mixed, 3).unwrap();
        assert_eq!(reports.len(), 3);
        let mut prev_committed = 0;
        let mut prev_credit = 0;
        for r in &reports {
            assert_eq!(r.recovered, prev_committed, "no acknowledged commit lost");
            assert_eq!(r.committed, r.recovered + 10, "2 threads x 5 ops per cycle");
            assert_eq!(
                r.durable, r.committed,
                "SyncPolicy::Always acks are durable"
            );
            assert!(r.credit > prev_credit, "credit only ever grows");
            prev_committed = r.committed;
            prev_credit = r.credit;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_writers_commits_every_op_exactly_once() {
        let store = retail_store(&RetailConfig::small());
        let cfg = MixedConfig {
            threads: 2,
            ops_per_thread: 10,
            ..MixedConfig::default()
        };
        let records = run_writers(&store, &cfg);
        assert_eq!(records.len(), 20);
        let mut versions: Vec<_> = records.iter().map(|r| r.version).collect();
        versions.sort_unstable();
        assert_eq!(
            versions,
            (1..=20).collect::<Vec<_>>(),
            "one version per commit"
        );
        let total: i64 = records.iter().map(|r| r.op.delta).sum();
        let rel = store.snapshot();
        let rel = rel.relation("customers").unwrap();
        let credit: i64 = rel
            .tuples()
            .unwrap()
            .iter()
            .map(|(_, t)| t.get("credit").unwrap().as_int("credit").unwrap())
            .sum();
        assert_eq!(credit, total, "no lost updates");
    }
}
