//! The retail workload: the paper's Fig. 1 schema (customers, products,
//! order) generated at configurable scale, fan-out, and skew — in both
//! FDM and relational form, from the same seed, so every benchmark
//! compares the two engines on identical data.

use crate::zipf::Zipf;
use fdm_core::{
    Constraint, DatabaseF, Domain, Participant, RelationBuilder, RelationshipBuilder, SharedDomain,
    TupleF, Value, ValueType,
};
use fdm_relational::{Cell, Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of the retail generator.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// Number of customers.
    pub customers: usize,
    /// Number of products.
    pub products: usize,
    /// Number of order entries (customer–product pairs; duplicates are
    /// retried, so the effective count can be slightly lower at extreme
    /// densities).
    pub orders: usize,
    /// Zipf exponent for product popularity (0 = uniform).
    pub product_skew: f64,
    /// Fraction of customers that never order (outer-join fodder).
    pub inactive_customers: f64,
    /// RNG seed — same seed, same data, both engines.
    pub seed: u64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        RetailConfig {
            customers: 1_000,
            products: 200,
            orders: 5_000,
            product_skew: 1.0,
            inactive_customers: 0.2,
            seed: 42,
        }
    }
}

impl RetailConfig {
    /// A small config for unit tests.
    pub fn small() -> Self {
        RetailConfig {
            customers: 50,
            products: 20,
            orders: 120,
            product_skew: 1.0,
            inactive_customers: 0.2,
            seed: 7,
        }
    }
}

/// The generated raw data, engine-agnostic.
#[derive(Debug, Clone)]
pub struct RetailData {
    /// `(cid, name, age, state)` rows.
    pub customers: Vec<(i64, String, i64, &'static str)>,
    /// `(pid, name, price, category)` rows.
    pub products: Vec<(i64, String, f64, &'static str)>,
    /// `(cid, pid, date, quantity)` rows; `(cid, pid)` unique.
    pub orders: Vec<(i64, i64, String, i64)>,
}

const STATES: [&str; 6] = ["NY", "CA", "TX", "WA", "MA", "IL"];
const CATEGORIES: [&str; 5] = ["audio", "input", "video", "cable", "storage"];

/// Generates the raw data for a config.
pub fn generate(cfg: &RetailConfig) -> RetailData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let customers: Vec<(i64, String, i64, &'static str)> = (0..cfg.customers)
        .map(|i| {
            (
                i as i64 + 1,
                format!("customer_{i}"),
                18 + rng.random_range(0..60),
                STATES[rng.random_range(0..STATES.len())],
            )
        })
        .collect();
    let products: Vec<(i64, String, f64, &'static str)> = (0..cfg.products)
        .map(|i| {
            (
                i as i64 + 1,
                format!("product_{i}"),
                (rng.random_range(100..10_000) as f64) / 100.0,
                CATEGORIES[rng.random_range(0..CATEGORIES.len())],
            )
        })
        .collect();

    let active_customers =
        ((cfg.customers as f64) * (1.0 - cfg.inactive_customers)).max(1.0) as usize;
    let zipf = Zipf::new(cfg.products, cfg.product_skew);
    let mut seen = std::collections::BTreeSet::new();
    let mut orders = Vec::with_capacity(cfg.orders);
    let mut attempts = 0usize;
    while orders.len() < cfg.orders && attempts < cfg.orders * 20 {
        attempts += 1;
        let cid = rng.random_range(0..active_customers) as i64 + 1;
        let pid = zipf.sample(&mut rng) as i64 + 1;
        if !seen.insert((cid, pid)) {
            continue;
        }
        let date = format!(
            "2026-{:02}-{:02}",
            rng.random_range(1..=12),
            rng.random_range(1..=28)
        );
        orders.push((cid, pid, date, rng.random_range(1..=5)));
    }
    RetailData {
        customers,
        products,
        orders,
    }
}

/// Builds the FDM database (relation functions + the `order` relationship
/// function over shared domains) from generated data.
pub fn to_fdm(data: &RetailData) -> DatabaseF {
    let cid_dom = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
    let pid_dom = SharedDomain::new("pid", Domain::Typed(ValueType::Int));

    // The generator emits cids/pids in ascending order, so both relations
    // take the O(n) bulk path instead of n persistent inserts — and the
    // schema's attribute-domain constraints are validated in the same
    // single pass that builds the tree (`build_with_constraints`), not by
    // re-scanning per constraint afterwards.
    let mut customers = RelationBuilder::new("customers", &["cid"]);
    for (cid, name, age, state) in &data.customers {
        customers.push_arc(
            Value::Int(*cid),
            Arc::new(
                TupleF::builder(format!("c{cid}"))
                    .attr("name", name.as_str())
                    .attr("age", *age)
                    .attr("state", *state)
                    .build(),
            ),
        );
    }
    let customers = customers
        .build_with_constraints(&[
            Constraint::attr_domain("name", Domain::Typed(ValueType::Str)),
            Constraint::attr_domain("age", Domain::Typed(ValueType::Int)),
            Constraint::attr_domain("state", Domain::Typed(ValueType::Str)),
        ])
        .expect("generated customers satisfy the retail schema");
    let mut products = RelationBuilder::new("products", &["pid"]);
    for (pid, name, price, category) in &data.products {
        products.push_arc(
            Value::Int(*pid),
            Arc::new(
                TupleF::builder(format!("p{pid}"))
                    .attr("name", name.as_str())
                    .attr("price", *price)
                    .attr("category", *category)
                    .build(),
            ),
        );
    }
    let products = products
        .build_with_constraints(&[
            Constraint::unique(&["name"]),
            Constraint::attr_domain("price", Domain::Typed(ValueType::Float)),
            Constraint::attr_domain("category", Domain::Typed(ValueType::Str)),
        ])
        .expect("generated products satisfy the retail schema");
    // Orders arrive in generation (random) order; the relationship
    // builder sorts once and bulk-builds the entry map and its fan-out
    // statistics in one pass, instead of one persistent insert (plus one
    // stats update) per entry.
    let mut order = RelationshipBuilder::new(
        "order",
        vec![
            Participant::new("customers", "cid", cid_dom.clone()),
            Participant::new("products", "pid", pid_dom.clone()),
        ],
    )
    .with_capacity(data.orders.len());
    for (cid, pid, date, qty) in &data.orders {
        order
            .push(
                &[Value::Int(*cid), Value::Int(*pid)],
                TupleF::builder("o")
                    .attr("date", date.as_str())
                    .attr("quantity", *qty)
                    .build(),
            )
            .expect("generated keys lie in the shared domains");
    }
    let order = order.build().expect("generator emits unique (cid, pid)");
    DatabaseF::new("shop")
        .with_domain(cid_dom)
        .with_domain(pid_dom)
        .with_relation(customers)
        .with_relation(products)
        .with_relationship(order)
}

/// The relational form: three tables, orders as a junction table.
#[derive(Debug, Clone)]
pub struct RetailRelational {
    /// `customers(cid, name, age, state)`.
    pub customers: Relation,
    /// `products(pid, name, price, category)`.
    pub products: Relation,
    /// `orders(cid, pid, date, quantity)`.
    pub orders: Relation,
}

/// Builds the relational tables from generated data.
pub fn to_relational(data: &RetailData) -> RetailRelational {
    let mut customers = Relation::new("customers", Schema::new(&["cid", "name", "age", "state"]));
    for (cid, name, age, state) in &data.customers {
        customers.push(vec![
            Cell::Int(*cid),
            Cell::str(name.as_str()),
            Cell::Int(*age),
            Cell::str(*state),
        ]);
    }
    let mut products = Relation::new(
        "products",
        Schema::new(&["pid", "name", "price", "category"]),
    );
    for (pid, name, price, category) in &data.products {
        products.push(vec![
            Cell::Int(*pid),
            Cell::str(name.as_str()),
            Cell::Float(*price),
            Cell::str(*category),
        ]);
    }
    let mut orders = Relation::new("orders", Schema::new(&["cid", "pid", "date", "quantity"]));
    for (cid, pid, date, qty) in &data.orders {
        orders.push(vec![
            Cell::Int(*cid),
            Cell::Int(*pid),
            Cell::str(date.as_str()),
            Cell::Int(*qty),
        ]);
    }
    RetailRelational {
        customers,
        products,
        orders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = RetailConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.customers.len(), 50);
        assert_eq!(a.products.len(), 20);
        assert_eq!(a.orders.len(), 120);
    }

    #[test]
    fn order_pairs_are_unique() {
        let data = generate(&RetailConfig::small());
        let mut pairs: Vec<(i64, i64)> = data.orders.iter().map(|(c, p, _, _)| (*c, *p)).collect();
        let n = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), n);
    }

    #[test]
    fn inactive_customers_never_order() {
        let cfg = RetailConfig::small();
        let data = generate(&cfg);
        let active = ((cfg.customers as f64) * (1.0 - cfg.inactive_customers)) as i64;
        assert!(data.orders.iter().all(|(cid, _, _, _)| *cid <= active));
    }

    #[test]
    fn both_engines_get_identical_cardinalities() {
        let data = generate(&RetailConfig::small());
        let fdm = to_fdm(&data);
        let rel = to_relational(&data);
        assert_eq!(
            fdm.relation("customers").unwrap().len(),
            rel.customers.len()
        );
        assert_eq!(fdm.relation("products").unwrap().len(), rel.products.len());
        assert_eq!(fdm.relationship("order").unwrap().len(), rel.orders.len());
    }

    #[test]
    fn skew_concentrates_orders_on_head_products() {
        let cfg = RetailConfig {
            customers: 200,
            products: 100,
            orders: 600,
            product_skew: 1.5,
            inactive_customers: 0.0,
            seed: 3,
        };
        let data = generate(&cfg);
        let head = data
            .orders
            .iter()
            .filter(|(_, pid, _, _)| *pid <= 10)
            .count();
        assert!(
            head as f64 > 0.3 * data.orders.len() as f64,
            "top-10 products draw a large share: {head}/{}",
            data.orders.len()
        );
    }
}
