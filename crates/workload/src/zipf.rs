//! A Zipf-distributed sampler (implemented here: `rand` ships no
//! distributions beyond uniform in its core crate, and the bench harness
//! must not pull extra dependencies).
//!
//! Uses the classic inverse-CDF-over-precomputed-prefix-sums approach:
//! O(n) setup, O(log n) sampling, exact distribution.

use rand::Rng;

/// A sampler drawing ranks `0..n` with probability ∝ `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probability masses, length n.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with exponent `s` (s = 0 is
    /// uniform; s = 1 the classic Zipf; larger = more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        assert!(s >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 2000.0).abs() < 300.0,
                "roughly uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // rank 0 should get ~1/H(100) ≈ 19% of the mass
        let frac = counts[0] as f64 / 50_000.0;
        assert!((0.15..0.25).contains(&frac), "head frequency {frac}");
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
