//! The serving workload: deterministic Zipf-skewed mixed operation
//! streams — point reads, range scans, transactional writes — shared by
//! the `bench_serve` harness and the serving-equivalence test suite.
//!
//! Like [`crate::driver`], everything derives from seeds: client `t`'s
//! stream is a pure function of `seed + t`, so the exact stream a
//! benchmark drove is the stream the differential oracle replays. The
//! op mix is expressed in percent so a config reads like the workload
//! descriptions in serving papers (80/10/10 read/scan/write).

use crate::zipf::Zipf;
use fdm_core::Value;
use fdm_txn::{BatchPolicy, Store, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One serving operation over the retail store's `customers` relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// Point read of one customer (Zipf-ranked: head customers are hot).
    PointRead {
        /// Target customer id.
        customer: i64,
    },
    /// Inclusive key-range scan of `len` customers starting at `start`.
    RangeScan {
        /// First customer id of the scan.
        start: i64,
        /// Number of consecutive ids covered.
        len: i64,
    },
    /// Transactional read-modify-write: add `delta` to the customer's
    /// `credit`.
    Write {
        /// Target customer id.
        customer: i64,
        /// Credit delta (1..=9, positive, so sums audit).
        delta: i64,
    },
}

/// Parameters of a serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Base seed; client `t` draws from `seed + t`.
    pub seed: u64,
    /// Zipf exponent for customer choice (reads *and* writes contend on
    /// the same head customers).
    pub skew: f64,
    /// Percent of operations that are point reads.
    pub read_pct: u8,
    /// Percent that are range scans; the remainder
    /// (`100 - read_pct - scan_pct`) are writes.
    pub scan_pct: u8,
    /// Ids covered per range scan.
    pub scan_len: i64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            clients: 4,
            ops_per_client: 1_000,
            seed: 77,
            skew: 1.1,
            read_pct: 80,
            scan_pct: 10,
            scan_len: 64,
        }
    }
}

/// The deterministic operation stream for one client thread.
pub fn serve_ops(cfg: &ServeConfig, n_customers: usize, client: usize) -> Vec<ServeOp> {
    assert!(
        cfg.read_pct as u16 + cfg.scan_pct as u16 <= 100,
        "op mix percentages exceed 100"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed + client as u64);
    let zipf = Zipf::new(n_customers.max(1), cfg.skew);
    (0..cfg.ops_per_client)
        .map(|_| {
            let roll = rng.random_range(0..100u8);
            let customer = zipf.sample(&mut rng) as i64 + 1;
            if roll < cfg.read_pct {
                ServeOp::PointRead { customer }
            } else if roll < cfg.read_pct + cfg.scan_pct {
                ServeOp::RangeScan {
                    start: customer,
                    len: cfg.scan_len.max(1),
                }
            } else {
                ServeOp::Write {
                    customer,
                    delta: rng.random_range(1..=9),
                }
            }
        })
        .collect()
}

/// The write operations of a stream, in stream order — what the
/// batched-vs-sequential differential oracle replays through both commit
/// paths.
pub fn writes_of(ops: &[ServeOp]) -> Vec<(i64, i64)> {
    ops.iter()
        .filter_map(|op| match op {
            ServeOp::Write { customer, delta } => Some((*customer, *delta)),
            _ => None,
        })
        .collect()
}

/// Commits one credit write through a fresh single transaction — the
/// naive serving path: one commit (one installed version, one WAL
/// record) per request.
pub fn commit_serve_write(store: &Arc<Store>, customer: i64, delta: i64) {
    store
        .run(|txn| {
            txn.modify_attr("customers", &Value::Int(customer), "credit", |v| {
                v.add(&Value::Int(delta))
            })
        })
        .expect("retail customers exist and the retry budget is generous");
}

/// Commits a write stream through the batched serving path: chunks of at
/// most `group` stream ops, each chunk **coalesced per customer** (one
/// member transaction per distinct target, deltas summed — in-batch
/// write-write overlap is a terminal conflict by design, and a single
/// client's repeat writes to a hot customer are exactly the compatible
/// small commits [`BatchPolicy`] exists to fold). Members a concurrent
/// commit knocked out of a group re-derive individually, just like a
/// conflicted single commit. Returns the number of flushed groups.
pub fn commit_serve_writes_batched(
    store: &Arc<Store>,
    writes: &[(i64, i64)],
    group: usize,
    policy: &BatchPolicy,
) -> usize {
    let mut flushes = 0usize;
    for chunk in writes.chunks(group.max(1)) {
        let mut per_customer: BTreeMap<i64, i64> = BTreeMap::new();
        for (customer, delta) in chunk {
            *per_customer.entry(*customer).or_insert(0) += delta;
        }
        let txns: Vec<Transaction> = per_customer
            .iter()
            .map(|(customer, delta)| {
                let mut txn = store.begin();
                txn.modify_attr("customers", &Value::Int(*customer), "credit", |v| {
                    v.add(&Value::Int(*delta))
                })
                .expect("retail customers exist");
                txn
            })
            .collect();
        let rejected: Vec<(i64, i64)> = store
            .commit_batch(txns, policy)
            .into_iter()
            .zip(per_customer.iter())
            .filter(|(outcome, _)| outcome.is_err())
            .map(|(_, (customer, delta))| (*customer, *delta))
            .collect();
        for (customer, delta) in rejected {
            store
                .run_with(&policy.commit, |txn| {
                    txn.modify_attr("customers", &Value::Int(customer), "credit", |v| {
                        v.add(&Value::Int(delta))
                    })
                })
                .expect("re-derived member lands under the retry budget");
        }
        flushes += 1;
    }
    flushes
}

/// Total `credit` across customers — the audit sum every serving run
/// must conserve (writes only ever add positive deltas).
pub fn total_credit(db: &fdm_core::DatabaseF) -> i64 {
    db.relation("customers")
        .expect("retail store has customers")
        .tuples()
        .expect("unique relation")
        .iter()
        .map(|(_, t)| {
            t.get("credit")
                .and_then(|v| v.as_int("credit"))
                .expect("credit is an int")
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::retail_store;
    use crate::retail::RetailConfig;

    #[test]
    fn batched_writes_conserve_the_audit_sum() {
        let writes: Vec<(i64, i64)> = serve_ops(
            &ServeConfig {
                read_pct: 0,
                scan_pct: 0,
                ops_per_client: 200,
                ..ServeConfig::default()
            },
            50,
            0,
        )
        .iter()
        .filter_map(|op| match op {
            ServeOp::Write { customer, delta } => Some((*customer, *delta)),
            _ => None,
        })
        .collect();
        assert_eq!(writes.len(), 200);
        let expected: i64 = writes.iter().map(|(_, d)| d).sum();

        let sequential = retail_store(&RetailConfig::small());
        for (c, d) in &writes {
            commit_serve_write(&sequential, *c, *d);
        }
        let batched = retail_store(&RetailConfig::small());
        let flushes = commit_serve_writes_batched(&batched, &writes, 16, &BatchPolicy::default());
        assert!(flushes < writes.len(), "batching folds commits");
        assert!(
            batched.version() < sequential.version(),
            "fewer installed versions: {} batched vs {} sequential",
            batched.version(),
            sequential.version()
        );
        assert_eq!(total_credit(&sequential.snapshot()), expected);
        assert_eq!(total_credit(&batched.snapshot()), expected);
    }

    #[test]
    fn streams_are_deterministic_per_client() {
        let cfg = ServeConfig::default();
        assert_eq!(serve_ops(&cfg, 100, 0), serve_ops(&cfg, 100, 0));
        assert_ne!(serve_ops(&cfg, 100, 0), serve_ops(&cfg, 100, 1));
    }

    #[test]
    fn mix_respects_percentages_roughly() {
        let cfg = ServeConfig {
            ops_per_client: 10_000,
            ..ServeConfig::default()
        };
        let ops = serve_ops(&cfg, 1000, 3);
        let reads = ops
            .iter()
            .filter(|o| matches!(o, ServeOp::PointRead { .. }))
            .count();
        let scans = ops
            .iter()
            .filter(|o| matches!(o, ServeOp::RangeScan { .. }))
            .count();
        let writes = writes_of(&ops).len();
        assert_eq!(reads + scans + writes, ops.len());
        // generous bounds: the roll is uniform over 100
        assert!((7_500..8_500).contains(&reads), "reads {reads}");
        assert!((600..1_400).contains(&scans), "scans {scans}");
        assert!((600..1_400).contains(&writes), "writes {writes}");
    }

    #[test]
    fn zipf_skew_concentrates_on_head_customers() {
        let cfg = ServeConfig {
            ops_per_client: 5_000,
            skew: 1.2,
            ..ServeConfig::default()
        };
        let ops = serve_ops(&cfg, 10_000, 0);
        let head = ops
            .iter()
            .filter_map(|o| match o {
                ServeOp::PointRead { customer } => Some(*customer),
                _ => None,
            })
            .filter(|&c| c <= 100)
            .count();
        let total = ops
            .iter()
            .filter(|o| matches!(o, ServeOp::PointRead { .. }))
            .count();
        assert!(
            head * 2 > total,
            "with skew 1.2 the top 1% of customers draw most reads ({head}/{total})"
        );
    }
}
