//! # fdm-workload — synthetic data for the reproduction benchmarks
//!
//! Generates the paper's Fig. 1 retail schema at configurable scale,
//! fan-out, and Zipf skew, in **both** FDM and relational form from the
//! same seed — so every figure's benchmark runs the two engines on
//! byte-identical logical data.

#![warn(missing_docs)]

pub mod driver;
pub mod retail;
pub mod serve;
pub mod zipf;

pub use driver::{
    apply_writer_op, durable_retail_store, retail_db, retail_store, retail_store_with,
    run_restart_cycles, run_writers, writer_ops, CommitRecord, MixedConfig, RestartReport,
    WriterOp,
};
pub use retail::{generate, to_fdm, to_relational, RetailConfig, RetailData, RetailRelational};
pub use serve::{
    commit_serve_write, commit_serve_writes_batched, serve_ops, total_credit, writes_of,
    ServeConfig, ServeOp,
};
pub use zipf::Zipf;
