//! Schemas, rows, and relations — "a relation is a set of tuples".

use crate::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// A column name.
pub type ColName = Arc<str>;

/// A relation schema: ordered column names (types are dynamic, as cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    cols: Arc<[ColName]>,
}

impl Schema {
    /// Builds a schema from column names.
    pub fn new(cols: &[&str]) -> Schema {
        Schema {
            cols: cols.iter().map(|c| ColName::from(*c)).collect(),
        }
    }

    /// Builds a schema from owned names.
    pub fn from_names(cols: Vec<ColName>) -> Schema {
        Schema { cols: cols.into() }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column names in order.
    pub fn cols(&self) -> &[ColName] {
        &self.cols
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.as_ref() == name)
    }

    /// Concatenates two schemas, prefixing clashing names from the right
    /// with `prefix.` (classic join-output naming).
    pub fn join(&self, other: &Schema, prefix: &str) -> Schema {
        let mut cols: Vec<ColName> = self.cols.to_vec();
        for c in other.cols.iter() {
            if self.index_of(c).is_some() {
                cols.push(ColName::from(format!("{prefix}.{c}").as_str()));
            } else {
                cols.push(c.clone());
            }
        }
        Schema { cols: cols.into() }
    }
}

/// A row: one cell per schema column.
pub type Row = Vec<Cell>;

/// A relation: a schema plus a bag of rows.
///
/// SQL's bag semantics are intentional here (baseline fidelity): use
/// [`Relation::distinct`] for set semantics.
#[derive(Debug, Clone)]
pub struct Relation {
    name: Arc<str>,
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl AsRef<str>, schema: Schema) -> Relation {
        Relation {
            name: Arc::from(name.as_ref()),
            schema,
            rows: Vec::new(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Appends a row; panics on arity mismatch (programming error).
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.len(),
            self.schema.width(),
            "row arity {} != schema width {} in '{}'",
            row.len(),
            self.schema.width(),
            self.name
        );
        self.rows.push(row);
    }

    /// Builder-style row append.
    pub fn with_row(mut self, row: Row) -> Relation {
        self.push(row);
        self
    }

    /// Bulk-load rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        for r in rows {
            self.push(r);
        }
    }

    /// Reads the cell at (row, column name).
    pub fn cell(&self, row: usize, col: &str) -> Option<&Cell> {
        let i = self.schema.index_of(col)?;
        self.rows.get(row).map(|r| &r[i])
    }

    /// Renames the relation.
    pub fn renamed(&self, name: impl AsRef<str>) -> Relation {
        let mut r = self.clone();
        r.name = Arc::from(name.as_ref());
        r
    }

    /// Total number of cells (rows × width): the *footprint* measure used
    /// by the result-size benchmarks (Fig. 5/7/8 contrasts).
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.schema.width()
    }

    /// Number of NULL cells — what the paper's separate-streams results
    /// avoid manufacturing.
    pub fn null_count(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().filter(|c| c.is_null()).count())
            .sum()
    }

    /// Sorts rows by the total order (deterministic output for tests).
    pub fn sorted(&self) -> Relation {
        let mut r = self.clone();
        r.rows.sort();
        r
    }

    /// Set-semantics view: sorted rows with duplicates removed.
    pub fn distinct(&self) -> Relation {
        let mut r = self.sorted();
        r.rows.dedup();
        r
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.schema.cols().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        writeln!(f, ") [{} rows]", self.rows.len())?;
        for row in self.rows.iter().take(20) {
            write!(f, "  ")?;
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  ... ({} more)", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Relation {
        let mut r = Relation::new("people", Schema::new(&["id", "name", "age"]));
        r.push(vec![Cell::Int(1), Cell::str("Alice"), Cell::Int(43)]);
        r.push(vec![Cell::Int(2), Cell::str("Bob"), Cell::Null]);
        r
    }

    #[test]
    fn schema_lookup_and_join_naming() {
        let s = Schema::new(&["id", "name"]);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        let joined = s.join(&Schema::new(&["id", "price"]), "p");
        assert_eq!(
            joined.cols().iter().map(|c| c.as_ref()).collect::<Vec<_>>(),
            vec!["id", "name", "p.id", "price"]
        );
    }

    #[test]
    fn rows_and_cells() {
        let r = people();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, "name"), Some(&Cell::str("Alice")));
        assert_eq!(r.cell(1, "age"), Some(&Cell::Null));
        assert_eq!(r.cell(5, "age"), None);
        assert_eq!(r.cell_count(), 6);
        assert_eq!(r.null_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = people();
        r.push(vec![Cell::Int(3)]);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut r = Relation::new("t", Schema::new(&["x"]));
        r.extend([vec![Cell::Int(2)], vec![Cell::Int(1)], vec![Cell::Int(2)]]);
        let d = r.distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.rows()[0][0], Cell::Int(1));
    }
}
