//! Cells — relational values *including NULL*.
//!
//! The FDM paper's central criticism of SQL result shaping is that forcing
//! everything into one relation manufactures NULLs (outer joins, grouping
//! sets). This baseline engine faithfully reproduces that behaviour,
//! including SQL's three-valued logic, so the contrast benchmarks measure
//! the real thing.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A relational cell value.
#[derive(Debug, Clone)]
pub enum Cell {
    /// SQL NULL: absence of a value, infecting comparisons with UNKNOWN.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(Arc<str>),
}

impl Cell {
    /// Builds a string cell.
    pub fn str(s: impl AsRef<str>) -> Cell {
        Cell::Str(Arc::from(s.as_ref()))
    }

    /// `true` if this cell is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// SQL equality: `NULL = x` is UNKNOWN (`None`).
    pub fn sql_eq(&self, other: &Cell) -> Option<bool> {
        match (self, other) {
            (Cell::Null, _) | (_, Cell::Null) => None,
            _ => Some(self.total_cmp(other) == Ordering::Equal),
        }
    }

    /// SQL ordering comparison: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Cell) -> Option<Ordering> {
        match (self, other) {
            (Cell::Null, _) | (_, Cell::Null) => None,
            _ => Some(self.total_cmp(other)),
        }
    }

    /// A total order used for sorting and grouping, where NULL sorts first
    /// and NULLs group together (SQL GROUP BY treats NULLs as one group).
    pub fn total_cmp(&self, other: &Cell) -> Ordering {
        fn rank(c: &Cell) -> u8 {
            match c {
                Cell::Null => 0,
                Cell::Bool(_) => 1,
                Cell::Int(_) | Cell::Float(_) => 2,
                Cell::Str(_) => 3,
            }
        }
        match (self, other) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Bool(a), Cell::Bool(b)) => a.cmp(b),
            (Cell::Int(a), Cell::Int(b)) => a.cmp(b),
            (Cell::Float(a), Cell::Float(b)) => a.total_cmp(b),
            (Cell::Int(a), Cell::Float(b)) => (*a as f64).total_cmp(b),
            (Cell::Float(a), Cell::Int(b)) => a.total_cmp(&(*b as f64)),
            (Cell::Str(a), Cell::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Numeric view (ints widen); `None` for NULL or non-numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// Equality via the grouping order (NULL == NULL here — this is the
/// *grouping* notion of equality, not SQL predicate equality; use
/// [`Cell::sql_eq`] in predicates).
impl PartialEq for Cell {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Cell {}

impl PartialOrd for Cell {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cell {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Null => write!(f, "NULL"),
            Cell::Bool(b) => write!(f, "{b}"),
            Cell::Int(i) => write!(f, "{i}"),
            Cell::Float(x) => write!(f, "{x}"),
            Cell::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Cell {
    fn from(i: i64) -> Self {
        Cell::Int(i)
    }
}

impl From<i32> for Cell {
    fn from(i: i32) -> Self {
        Cell::Int(i64::from(i))
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Float(x)
    }
}

impl From<bool> for Cell {
    fn from(b: bool) -> Self {
        Cell::Bool(b)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::str(s)
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_infects_sql_comparisons() {
        assert_eq!(Cell::Null.sql_eq(&Cell::Int(1)), None);
        assert_eq!(
            Cell::Null.sql_eq(&Cell::Null),
            None,
            "NULL = NULL is UNKNOWN"
        );
        assert_eq!(Cell::Int(1).sql_eq(&Cell::Int(1)), Some(true));
        assert_eq!(Cell::Null.sql_cmp(&Cell::Int(1)), None);
    }

    #[test]
    fn grouping_equality_groups_nulls() {
        assert_eq!(Cell::Null, Cell::Null);
        assert!(Cell::Null < Cell::Int(0), "NULL sorts first");
    }

    #[test]
    fn cross_numeric() {
        assert_eq!(Cell::Int(1), Cell::Float(1.0));
        assert_eq!(
            Cell::Int(1).sql_cmp(&Cell::Float(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Cell::Int(2).as_f64(), Some(2.0));
        assert_eq!(Cell::Null.as_f64(), None);
        assert_eq!(Cell::str("x").as_f64(), None);
    }
}
