//! # fdm-relational — the classical baseline
//!
//! A small but faithful relational engine, built from scratch, embodying
//! the semantics the FDM/FQL paper criticizes:
//!
//! * a relation is a **set (bag) of tuples**, not a function;
//! * every query returns **one** output relation;
//! * missing information is **NULL** with three-valued logic;
//! * outer joins pad with NULLs ([`ops::outer_join`]);
//! * GROUPING SETS/ROLLUP/CUBE fold semantically different groupings into
//!   one NULL-filled relation ([`agg::grouping_sets`]);
//! * textual SQL assembled by string concatenation is injectable
//!   ([`sql::Catalog::query_where_name_equals_spliced`], used only to
//!   demonstrate the contrast with FQL's structural immunity).
//!
//! Every Fig. 4–11 benchmark in `fdm-bench` runs the same workload on this
//! engine and on the FDM/FQL engine and compares shapes (result footprint,
//! NULL counts, time).

#![warn(missing_docs)]

pub mod agg;
pub mod cell;
pub mod ops;
pub mod relation;
pub mod sql;

pub use agg::{cube, group_by, grouping_sets, rollup, Agg, GroupingSet};
pub use cell::Cell;
pub use ops::{
    col_eq, except, hash_join, intersect, outer_join, project, select, union, OuterSide,
};
pub use relation::{ColName, Relation, Row, Schema};
pub use sql::{Catalog, SqlError};
