//! A deliberately tiny, deliberately *string-spliced* SQL-ish layer.
//!
//! Purpose: demonstrate, against a working implementation, why textual
//! query assembly is injectable and why FQL's value-level parameter
//! binding (see `fdm-expr`) is immune **by construction** (paper
//! contribution 10). This is the classic textbook contrast — the
//! vulnerable pattern below (`query_customers_unsafe`-style concatenation)
//! is what real applications did before prepared statements.
//!
//! Supported grammar (enough for the demo and for baseline convenience):
//!
//! ```text
//! SELECT * FROM <ident> WHERE <cond> ( OR <cond> )*
//! cond := <ident> = <literal> | <literal> = <literal>
//! literal := '<chars>' | integer
//! ```

use crate::cell::Cell;
use crate::ops::select;
use crate::relation::Relation;
use std::collections::HashMap;
use std::fmt;

/// Errors from the mini-SQL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError(pub String);

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sql error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

/// A catalog of named relations the mini-SQL layer can query.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Relation>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation under its own name.
    pub fn register(&mut self, rel: Relation) {
        self.tables.insert(rel.name().to_string(), rel);
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// **The vulnerable pattern**: builds a query by splicing a raw,
    /// attacker-controllable string into the WHERE clause, exactly like
    /// `"... WHERE name = '" + user_input + "'"`. Provided so tests and
    /// examples can demonstrate the injection the paper's design rules
    /// out. Never do this.
    pub fn query_where_name_equals_spliced(
        &self,
        table: &str,
        user_input: &str,
    ) -> Result<Relation, SqlError> {
        let q = format!("SELECT * FROM {table} WHERE name = '{user_input}'");
        self.execute(&q)
    }

    /// Executes a mini-SQL query string.
    pub fn execute(&self, query: &str) -> Result<Relation, SqlError> {
        let stmt = parse_select(query)?;
        let rel = self
            .tables
            .get(&stmt.table)
            .ok_or_else(|| SqlError(format!("no table '{}'", stmt.table)))?;
        let out = select(rel, |schema, row| {
            // No WHERE clause: every row qualifies.
            if stmt.disjuncts.is_empty() {
                return Some(true);
            }
            // OR over the disjuncts with SQL three-valued logic
            let mut any_unknown = false;
            for c in &stmt.disjuncts {
                match c.eval(schema, row) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => any_unknown = true,
                }
            }
            if any_unknown {
                None
            } else {
                Some(false)
            }
        });
        Ok(out.renamed(format!("result_of({})", stmt.table)))
    }
}

/// One `lhs = rhs` condition; either side is a column or a literal.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Operand {
    Col(String),
    Lit(Cell),
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Cond {
    lhs: Operand,
    rhs: Operand,
}

impl Cond {
    fn eval(&self, schema: &crate::relation::Schema, row: &crate::relation::Row) -> Option<bool> {
        let l = self.resolve(&self.lhs, schema, row)?;
        let r = self.resolve(&self.rhs, schema, row)?;
        l.sql_eq(&r)
    }

    fn resolve<'a>(
        &self,
        op: &'a Operand,
        schema: &crate::relation::Schema,
        row: &'a crate::relation::Row,
    ) -> Option<Cell> {
        match op {
            Operand::Col(c) => schema.index_of(c).map(|i| row[i].clone()),
            Operand::Lit(c) => Some(c.clone()),
        }
    }
}

#[derive(Debug)]
pub(crate) struct SelectStmt {
    table: String,
    disjuncts: Vec<Cond>,
}

/// Parses `SELECT * FROM t WHERE a = 'x' OR 1 = 1 ...` the way a naive
/// SQL engine would — which is precisely why splicing is dangerous: the
/// payload `' OR '1'='1` *changes the parse tree*.
pub(crate) fn parse_select(q: &str) -> Result<SelectStmt, SqlError> {
    let toks = sql_lex(q)?;
    let mut i = 0usize;
    let expect_kw = |toks: &[SqlTok], i: &mut usize, kw: &str| -> Result<(), SqlError> {
        match toks.get(*i) {
            Some(SqlTok::Word(w)) if w.eq_ignore_ascii_case(kw) => {
                *i += 1;
                Ok(())
            }
            other => Err(SqlError(format!("expected {kw}, found {other:?}"))),
        }
    };
    expect_kw(&toks, &mut i, "SELECT")?;
    match toks.get(i) {
        Some(SqlTok::Star) => i += 1,
        other => return Err(SqlError(format!("expected *, found {other:?}"))),
    }
    expect_kw(&toks, &mut i, "FROM")?;
    let table = match toks.get(i) {
        Some(SqlTok::Word(w)) => {
            i += 1;
            w.clone()
        }
        other => return Err(SqlError(format!("expected table name, found {other:?}"))),
    };
    let mut disjuncts = Vec::new();
    if i < toks.len() {
        expect_kw(&toks, &mut i, "WHERE")?;
        loop {
            let lhs = parse_operand(&toks, &mut i)?;
            match toks.get(i) {
                Some(SqlTok::Eq) => i += 1,
                other => return Err(SqlError(format!("expected '=', found {other:?}"))),
            }
            let rhs = parse_operand(&toks, &mut i)?;
            disjuncts.push(Cond { lhs, rhs });
            match toks.get(i) {
                Some(SqlTok::Word(w)) if w.eq_ignore_ascii_case("OR") => {
                    i += 1;
                }
                None => break,
                other => return Err(SqlError(format!("expected OR or end, found {other:?}"))),
            }
        }
    }
    Ok(SelectStmt { table, disjuncts })
}

fn parse_operand(toks: &[SqlTok], i: &mut usize) -> Result<Operand, SqlError> {
    match toks.get(*i) {
        Some(SqlTok::Word(w)) => {
            *i += 1;
            Ok(Operand::Col(w.clone()))
        }
        Some(SqlTok::Str(s)) => {
            *i += 1;
            Ok(Operand::Lit(Cell::str(s.as_str())))
        }
        Some(SqlTok::Int(n)) => {
            *i += 1;
            Ok(Operand::Lit(Cell::Int(*n)))
        }
        other => Err(SqlError(format!("expected operand, found {other:?}"))),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum SqlTok {
    Word(String),
    Str(String),
    Int(i64),
    Eq,
    Star,
}

/// SQL-style lexer: `''` escapes a quote inside a string — and an
/// unbalanced quote from spliced input silently re-shapes the token
/// stream, which is the injection vector.
fn sql_lex(q: &str) -> Result<Vec<SqlTok>, SqlError> {
    let b = q.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        match b[i] as char {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '=' => {
                out.push(SqlTok::Eq);
                i += 1;
            }
            '*' => {
                out.push(SqlTok::Star);
                i += 1;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(SqlError("unterminated string".into()));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                out.push(SqlTok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                out.push(SqlTok::Int(
                    q[start..i]
                        .parse()
                        .map_err(|_| SqlError("int overflow".into()))?,
                ));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(SqlTok::Word(q[start..i].to_string()));
            }
            other => return Err(SqlError(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Schema;

    fn catalog() -> Catalog {
        let mut users = Relation::new("users", Schema::new(&["id", "name", "secret"]));
        users.extend([
            vec![Cell::Int(1), Cell::str("alice"), Cell::str("s3cr3t-a")],
            vec![Cell::Int(2), Cell::str("bob"), Cell::str("s3cr3t-b")],
        ]);
        let mut c = Catalog::new();
        c.register(users);
        c
    }

    #[test]
    fn honest_query_returns_one_row() {
        let c = catalog();
        let out = c.query_where_name_equals_spliced("users", "alice").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "name"), Some(&Cell::str("alice")));
    }

    #[test]
    fn classic_payload_dumps_the_table() {
        // The whole point of this module: `' OR '1'='1` reshapes the
        // WHERE clause and returns every row, secrets included.
        let c = catalog();
        let out = c
            .query_where_name_equals_spliced("users", "' OR '1'='1")
            .unwrap();
        assert_eq!(out.len(), 2, "injection succeeded against spliced SQL");
    }

    #[test]
    fn direct_execute_and_errors() {
        let c = catalog();
        let out = c.execute("SELECT * FROM users WHERE id = 2").unwrap();
        assert_eq!(out.len(), 1);
        let out = c.execute("SELECT * FROM users").unwrap();
        assert_eq!(out.len(), 2);
        assert!(c.execute("SELECT * FROM nope").is_err());
        assert!(c.execute("DROP TABLE users").is_err());
        assert!(c.execute("SELECT * FROM users WHERE name = 'open").is_err());
    }

    #[test]
    fn doubled_quote_escapes() {
        let c = catalog();
        let out = c
            .execute("SELECT * FROM users WHERE name = 'o''brien'")
            .unwrap();
        assert_eq!(out.len(), 0, "parses fine, matches nobody");
    }
}
