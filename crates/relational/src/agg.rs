//! GROUP BY, aggregates, and GROUPING SETS / ROLLUP / CUBE with the
//! single-NULL-filled-output shape of SQL — the behaviour the paper's
//! Fig. 8 contrasts with FDM's separate relation functions per grouping.

use crate::cell::Cell;
use crate::relation::{Relation, Row, Schema};
use std::collections::BTreeMap;

/// An aggregate function over a column (or `*` for COUNT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Agg {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(col)` — non-NULL count.
    Count(String),
    /// `SUM(col)` — NULLs ignored; empty group yields NULL (SQL!).
    Sum(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
    /// `AVG(col)`.
    Avg(String),
}

impl Agg {
    /// The output column name, SQL-style.
    pub fn out_name(&self) -> String {
        match self {
            Agg::CountStar => "count".to_string(),
            Agg::Count(c) => format!("count_{c}"),
            Agg::Sum(c) => format!("sum_{c}"),
            Agg::Min(c) => format!("min_{c}"),
            Agg::Max(c) => format!("max_{c}"),
            Agg::Avg(c) => format!("avg_{c}"),
        }
    }

    /// Evaluates the aggregate over the rows of one group.
    pub fn eval(&self, schema: &Schema, rows: &[&Row]) -> Cell {
        match self {
            Agg::CountStar => Cell::Int(rows.len() as i64),
            Agg::Count(col) => {
                let i = schema.index_of(col).expect("aggregate column");
                Cell::Int(rows.iter().filter(|r| !r[i].is_null()).count() as i64)
            }
            Agg::Sum(col) => {
                let i = schema.index_of(col).expect("aggregate column");
                let vals: Vec<f64> = rows.iter().filter_map(|r| r[i].as_f64()).collect();
                if vals.is_empty() {
                    Cell::Null
                } else {
                    let s: f64 = vals.iter().sum();
                    if s.fract() == 0.0
                        && rows
                            .iter()
                            .all(|r| matches!(r[i], Cell::Int(_) | Cell::Null))
                    {
                        Cell::Int(s as i64)
                    } else {
                        Cell::Float(s)
                    }
                }
            }
            Agg::Min(col) => {
                let i = schema.index_of(col).expect("aggregate column");
                rows.iter()
                    .map(|r| &r[i])
                    .filter(|c| !c.is_null())
                    .min()
                    .cloned()
                    .unwrap_or(Cell::Null)
            }
            Agg::Max(col) => {
                let i = schema.index_of(col).expect("aggregate column");
                rows.iter()
                    .map(|r| &r[i])
                    .filter(|c| !c.is_null())
                    .max()
                    .cloned()
                    .unwrap_or(Cell::Null)
            }
            Agg::Avg(col) => {
                let i = schema.index_of(col).expect("aggregate column");
                let vals: Vec<f64> = rows.iter().filter_map(|r| r[i].as_f64()).collect();
                if vals.is_empty() {
                    Cell::Null
                } else {
                    Cell::Float(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            }
        }
    }
}

/// `GROUP BY by_cols` computing `aggs`, producing one output relation with
/// the grouping columns followed by one column per aggregate.
pub fn group_by(input: &Relation, by_cols: &[&str], aggs: &[Agg]) -> Relation {
    let by_idx: Vec<usize> = by_cols
        .iter()
        .map(|c| input.schema().index_of(c).expect("group-by column"))
        .collect();
    let mut groups: BTreeMap<Vec<Cell>, Vec<&Row>> = BTreeMap::new();
    for row in input.rows() {
        let key: Vec<Cell> = by_idx.iter().map(|&i| row[i].clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    // SQL: a global aggregate (no GROUP BY) over an empty input still
    // produces exactly one row (COUNT = 0, SUM = NULL).
    if by_cols.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }
    let mut cols: Vec<&str> = by_cols.to_vec();
    let agg_names: Vec<String> = aggs.iter().map(Agg::out_name).collect();
    for n in &agg_names {
        cols.push(n);
    }
    let mut out = Relation::new(format!("γ({})", input.name()), Schema::new(&cols));
    for (key, rows) in &groups {
        let mut row = key.clone();
        for a in aggs {
            row.push(a.eval(input.schema(), rows));
        }
        out.push(row);
    }
    out
}

/// One grouping condition inside a GROUPING SETS query.
#[derive(Debug, Clone)]
pub struct GroupingSet {
    /// Columns to group by (may be empty: the grand total).
    pub by: Vec<String>,
    /// Aggregates to compute.
    pub aggs: Vec<Agg>,
}

/// `GROUP BY GROUPING SETS (...)` — the SQL shape: **one** output relation
/// whose schema is the union of all grouping columns plus all aggregates,
/// with NULL filled into every column that does not apply to a row's
/// grouping set (paper Fig. 8: "forcing the result into a single output
/// relation and thus filling up the result with NULL-values").
pub fn grouping_sets(input: &Relation, sets: &[GroupingSet]) -> Relation {
    // union of all by-columns, in first-appearance order
    let mut by_union: Vec<String> = Vec::new();
    for s in sets {
        for c in &s.by {
            if !by_union.contains(c) {
                by_union.push(c.clone());
            }
        }
    }
    // union of all aggregate outputs, in first-appearance order
    let mut agg_union: Vec<Agg> = Vec::new();
    for s in sets {
        for a in &s.aggs {
            if !agg_union.contains(a) {
                agg_union.push(a.clone());
            }
        }
    }
    let mut cols: Vec<&str> = by_union.iter().map(String::as_str).collect();
    let agg_names: Vec<String> = agg_union.iter().map(Agg::out_name).collect();
    for n in &agg_names {
        cols.push(n);
    }
    let mut out = Relation::new(
        format!("grouping_sets({})", input.name()),
        Schema::new(&cols),
    );

    for set in sets {
        let by_refs: Vec<&str> = set.by.iter().map(String::as_str).collect();
        let partial = group_by(input, &by_refs, &set.aggs);
        for prow in partial.rows() {
            let mut row: Row = Vec::with_capacity(out.schema().width());
            for c in &by_union {
                match set.by.iter().position(|b| b == c) {
                    Some(i) => row.push(prow[i].clone()),
                    None => row.push(Cell::Null), // the manufactured NULL
                }
            }
            for a in &agg_union {
                match set.aggs.iter().position(|x| x == a) {
                    Some(i) => row.push(prow[set.by.len() + i].clone()),
                    None => row.push(Cell::Null),
                }
            }
            out.push(row);
        }
    }
    out
}

/// `ROLLUP(c1, c2, ..., ck)`: grouping sets (c1..ck), (c1..ck-1), ..., ().
pub fn rollup(input: &Relation, by: &[&str], aggs: &[Agg]) -> Relation {
    let sets: Vec<GroupingSet> = (0..=by.len())
        .rev()
        .map(|k| GroupingSet {
            by: by[..k].iter().map(|s| s.to_string()).collect(),
            aggs: aggs.to_vec(),
        })
        .collect();
    grouping_sets(input, &sets)
}

/// `CUBE(c1, ..., ck)`: all 2^k subsets.
pub fn cube(input: &Relation, by: &[&str], aggs: &[Agg]) -> Relation {
    let k = by.len();
    assert!(k <= 16, "cube over more than 16 columns is absurd");
    let mut sets = Vec::with_capacity(1 << k);
    for mask in (0..(1usize << k)).rev() {
        let cols: Vec<String> = by
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| c.to_string())
            .collect();
        sets.push(GroupingSet {
            by: cols,
            aggs: aggs.to_vec(),
        });
    }
    grouping_sets(input, &sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> Relation {
        let mut r = Relation::new("customers", Schema::new(&["name", "age", "state"]));
        r.extend([
            vec![Cell::str("Alice"), Cell::Int(43), Cell::str("NY")],
            vec![Cell::str("Bob"), Cell::Int(30), Cell::str("NY")],
            vec![Cell::str("Carol"), Cell::Int(43), Cell::str("CA")],
            vec![Cell::str("Dave"), Cell::Null, Cell::str("CA")],
        ]);
        r
    }

    #[test]
    fn group_by_with_count() {
        let out = group_by(&customers(), &["age"], &[Agg::CountStar]);
        // groups: NULL, 30, 43
        assert_eq!(out.len(), 3);
        // NULL groups together (SQL GROUP BY semantics) and sorts first
        assert!(out.rows()[0][0].is_null());
        assert_eq!(out.rows()[0][1], Cell::Int(1));
        assert_eq!(out.rows()[2], vec![Cell::Int(43), Cell::Int(2)]);
    }

    #[test]
    fn aggregates_ignore_nulls() {
        let out = group_by(
            &customers(),
            &[],
            &[
                Agg::Count("age".into()),
                Agg::Sum("age".into()),
                Agg::Min("age".into()),
                Agg::Max("age".into()),
                Agg::Avg("age".into()),
            ],
        );
        assert_eq!(out.len(), 1);
        let r = &out.rows()[0];
        assert_eq!(r[0], Cell::Int(3), "COUNT skips Dave's NULL");
        assert_eq!(r[1], Cell::Int(116));
        assert_eq!(r[2], Cell::Int(30));
        assert_eq!(r[3], Cell::Int(43));
        match &r[4] {
            Cell::Float(x) => assert!((x - 116.0 / 3.0).abs() < 1e-9),
            other => panic!("avg should be float, got {other}"),
        }
    }

    #[test]
    fn empty_group_sum_is_null() {
        let empty = Relation::new("e", Schema::new(&["x"]));
        let out = group_by(&empty, &[], &[Agg::Sum("x".into()), Agg::CountStar]);
        assert_eq!(
            out.rows()[0][0],
            Cell::Null,
            "SUM over nothing is NULL in SQL"
        );
        assert_eq!(out.rows()[0][1], Cell::Int(0));
    }

    #[test]
    fn grouping_sets_fill_nulls() {
        // the paper's Fig. 8 shape: by age, by (age, name), and global min
        let out = grouping_sets(
            &customers(),
            &[
                GroupingSet {
                    by: vec!["age".into()],
                    aggs: vec![Agg::CountStar],
                },
                GroupingSet {
                    by: vec!["age".into(), "name".into()],
                    aggs: vec![Agg::CountStar],
                },
                GroupingSet {
                    by: vec![],
                    aggs: vec![Agg::Min("age".into())],
                },
            ],
        );
        // 3 age groups + 4 (age,name) groups + 1 global row
        assert_eq!(out.len(), 8);
        // the single-output shape manufactures NULLs:
        assert!(out.null_count() > 0);
        // the global row has NULL in both grouping columns and in count
        let global: Vec<_> = out
            .rows()
            .iter()
            .filter(|r| r[0].is_null() && r[1].is_null() && !r[3].is_null())
            .collect();
        assert_eq!(global.len(), 1);
        assert_eq!(global[0][3], Cell::Int(30), "global MIN(age)");
        // NOTE the ambiguity the paper points out: Dave's age IS NULL, so
        // his by-age group row is indistinguishable from a rollup row
        // without GROUPING() functions — we count the NULL-keyed rows to
        // document it:
        let null_age_count_rows = out
            .rows()
            .iter()
            .filter(|r| r[0].is_null() && !r[2].is_null())
            .count();
        assert!(
            null_age_count_rows >= 2,
            "real NULL group + subtotal rows collide"
        );
    }

    #[test]
    fn rollup_produces_k_plus_one_levels() {
        let out = rollup(&customers(), &["state", "age"], &[Agg::CountStar]);
        // (state,age): NY43,NY30,CA43,CAnull = 4 rows
        // (state): NY, CA = 2 rows; (): 1 row
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn cube_produces_all_subsets() {
        let out = cube(&customers(), &["state", "age"], &[Agg::CountStar]);
        // (state,age)=4, (state)=2, (age)=3, ()=1
        assert_eq!(out.len(), 10);
    }
}
