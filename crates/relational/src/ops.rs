//! Classical relational-algebra operators over [`Relation`].
//!
//! These are the baseline semantics the FDM paper contrasts against:
//! every operator returns **one** relation; missing matches become NULLs
//! (outer joins); everything else is post-processing on a single stream.

use crate::cell::Cell;
use crate::relation::{Relation, Row, Schema};
use std::collections::HashMap;

/// σ: keeps rows where `pred` returns `Some(true)` (SQL three-valued
/// logic: UNKNOWN filters out, exactly like NULL comparisons in WHERE).
pub fn select(input: &Relation, pred: impl Fn(&Schema, &Row) -> Option<bool>) -> Relation {
    let mut out = Relation::new(format!("σ({})", input.name()), input.schema().clone());
    for row in input.rows() {
        if pred(input.schema(), row) == Some(true) {
            out.push(row.clone());
        }
    }
    out
}

/// A convenience predicate: `col = lit` with SQL semantics.
pub fn col_eq(col: &str, lit: Cell) -> impl Fn(&Schema, &Row) -> Option<bool> {
    let col = col.to_string();
    move |schema, row| {
        let i = schema.index_of(&col)?;
        row[i].sql_eq(&lit)
    }
}

/// π: projects onto the named columns (panics on unknown columns —
/// schema errors are programming errors in this engine).
pub fn project(input: &Relation, cols: &[&str]) -> Relation {
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| {
            input
                .schema()
                .index_of(c)
                .unwrap_or_else(|| panic!("no column '{c}' in '{}'", input.name()))
        })
        .collect();
    let mut out = Relation::new(format!("π({})", input.name()), Schema::new(cols));
    for row in input.rows() {
        out.push(idx.iter().map(|&i| row[i].clone()).collect());
    }
    out
}

/// Hash equi-join (inner): joins on `left.lcol = right.rcol`.
pub fn hash_join(left: &Relation, right: &Relation, lcol: &str, rcol: &str) -> Relation {
    let li = left
        .schema()
        .index_of(lcol)
        .unwrap_or_else(|| panic!("no column '{lcol}' in '{}'", left.name()));
    let ri = right
        .schema()
        .index_of(rcol)
        .unwrap_or_else(|| panic!("no column '{rcol}' in '{}'", right.name()));

    // Build side: smaller relation.
    let schema = left.schema().join(right.schema(), right.name());
    let mut out = Relation::new(format!("({} ⋈ {})", left.name(), right.name()), schema);

    let mut table: HashMap<CellKey, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        if row[ri].is_null() {
            continue; // NULL never joins
        }
        table.entry(CellKey(row[ri].clone())).or_default().push(i);
    }
    for lrow in left.rows() {
        if lrow[li].is_null() {
            continue;
        }
        if let Some(matches) = table.get(&CellKey(lrow[li].clone())) {
            for &m in matches {
                let mut row = lrow.clone();
                row.extend(right.rows()[m].iter().cloned());
                out.push(row);
            }
        }
    }
    out
}

/// Which sides of an outer join preserve unmatched rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterSide {
    /// Preserve unmatched left rows (LEFT OUTER).
    Left,
    /// Preserve unmatched right rows (RIGHT OUTER).
    Right,
    /// Preserve both (FULL OUTER).
    Full,
}

/// Outer hash join with NULL padding — the single-output-relation shape
/// the paper's Fig. 7 argues against (inner and outer tuples are mixed in
/// one stream, distinguishable only by scanning for NULLs).
pub fn outer_join(
    left: &Relation,
    right: &Relation,
    lcol: &str,
    rcol: &str,
    side: OuterSide,
) -> Relation {
    let li = left.schema().index_of(lcol).expect("left join column");
    let ri = right.schema().index_of(rcol).expect("right join column");
    let schema = left.schema().join(right.schema(), right.name());
    let mut out = Relation::new(format!("({} ⟗ {})", left.name(), right.name()), schema);

    let mut table: HashMap<CellKey, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        if !row[ri].is_null() {
            table.entry(CellKey(row[ri].clone())).or_default().push(i);
        }
    }
    let mut right_matched = vec![false; right.len()];
    for lrow in left.rows() {
        let matches = if lrow[li].is_null() {
            None
        } else {
            table.get(&CellKey(lrow[li].clone()))
        };
        match matches {
            Some(ms) if !ms.is_empty() => {
                for &m in ms {
                    right_matched[m] = true;
                    let mut row = lrow.clone();
                    row.extend(right.rows()[m].iter().cloned());
                    out.push(row);
                }
            }
            _ => {
                if matches!(side, OuterSide::Left | OuterSide::Full) {
                    let mut row = lrow.clone();
                    row.extend(std::iter::repeat_n(Cell::Null, right.schema().width()));
                    out.push(row);
                }
            }
        }
    }
    if matches!(side, OuterSide::Right | OuterSide::Full) {
        for (i, rrow) in right.rows().iter().enumerate() {
            if !right_matched[i] {
                let mut row: Row = std::iter::repeat_n(Cell::Null, left.schema().width()).collect();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
    }
    out
}

/// ∪ with set semantics (schemas must be union-compatible by width).
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(
        a.schema().width(),
        b.schema().width(),
        "union compatibility"
    );
    let mut out = Relation::new(format!("({} ∪ {})", a.name(), b.name()), a.schema().clone());
    out.extend(a.rows().iter().cloned());
    out.extend(b.rows().iter().cloned());
    out.distinct()
}

/// ∩ with set semantics.
pub fn intersect(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(
        a.schema().width(),
        b.schema().width(),
        "union compatibility"
    );
    let set: std::collections::BTreeSet<&Row> = b.rows().iter().collect();
    let mut out = Relation::new(format!("({} ∩ {})", a.name(), b.name()), a.schema().clone());
    for row in a.rows() {
        if set.contains(row) {
            out.push(row.clone());
        }
    }
    out.distinct()
}

/// − (EXCEPT) with set semantics.
pub fn except(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(
        a.schema().width(),
        b.schema().width(),
        "union compatibility"
    );
    let set: std::collections::BTreeSet<&Row> = b.rows().iter().collect();
    let mut out = Relation::new(format!("({} − {})", a.name(), b.name()), a.schema().clone());
    for row in a.rows() {
        if !set.contains(row) {
            out.push(row.clone());
        }
    }
    out.distinct()
}

/// A hashable wrapper around `Cell` using the grouping notion of equality.
#[derive(PartialEq, Eq)]
pub(crate) struct CellKey(pub(crate) Cell);

impl std::hash::Hash for CellKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Cell::Null => 0u8.hash(state),
            Cell::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Cell::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Cell::Float(x) => {
                if x.fract() == 0.0
                    && x.is_finite()
                    && *x >= i64::MIN as f64
                    && *x <= i64::MAX as f64
                {
                    2u8.hash(state);
                    (*x as i64).hash(state);
                } else {
                    3u8.hash(state);
                    x.to_bits().hash(state);
                }
            }
            Cell::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> Relation {
        let mut r = Relation::new("customers", Schema::new(&["id", "name", "age"]));
        r.extend([
            vec![Cell::Int(1), Cell::str("Alice"), Cell::Int(43)],
            vec![Cell::Int(2), Cell::str("Bob"), Cell::Int(30)],
            vec![Cell::Int(3), Cell::str("Carol"), Cell::Null],
        ]);
        r
    }

    fn orders() -> Relation {
        let mut r = Relation::new("orders", Schema::new(&["c_id", "p_id"]));
        r.extend([
            vec![Cell::Int(1), Cell::Int(10)],
            vec![Cell::Int(1), Cell::Int(11)],
            vec![Cell::Int(2), Cell::Int(10)],
        ]);
        r
    }

    #[test]
    fn select_three_valued_logic() {
        // age > 40 — Carol's NULL age is UNKNOWN, filtered out.
        let out = select(&customers(), |s, r| {
            let i = s.index_of("age")?;
            r[i].sql_cmp(&Cell::Int(40))
                .map(|o| o == std::cmp::Ordering::Greater)
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "name"), Some(&Cell::str("Alice")));
    }

    #[test]
    fn col_eq_helper() {
        let out = select(&customers(), col_eq("name", Cell::str("Bob")));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn project_reorders() {
        let out = project(&customers(), &["name", "id"]);
        assert_eq!(out.schema().cols()[0].as_ref(), "name");
        assert_eq!(out.rows()[0][1], Cell::Int(1));
    }

    #[test]
    fn inner_join_denormalizes() {
        let out = hash_join(&customers(), &orders(), "id", "c_id");
        // Alice×2 + Bob×1 = 3 rows; Carol unmatched, gone.
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().width(), 5);
        // Alice appears twice — the duplication the paper's subdatabase
        // result avoids.
        let alices = out
            .rows()
            .iter()
            .filter(|r| r[1] == Cell::str("Alice"))
            .count();
        assert_eq!(alices, 2);
    }

    #[test]
    fn left_outer_pads_with_nulls() {
        let out = outer_join(&customers(), &orders(), "id", "c_id", OuterSide::Left);
        assert_eq!(out.len(), 4);
        let carol: Vec<_> = out
            .rows()
            .iter()
            .filter(|r| r[1] == Cell::str("Carol"))
            .collect();
        assert_eq!(carol.len(), 1);
        assert!(carol[0][3].is_null() && carol[0][4].is_null());
        assert_eq!(out.null_count(), 3, "Carol's NULL age + 2 padded cells");
    }

    #[test]
    fn full_outer_preserves_both_sides() {
        let mut orphan_orders = orders();
        orphan_orders.push(vec![Cell::Int(99), Cell::Int(12)]);
        let out = outer_join(&customers(), &orphan_orders, "id", "c_id", OuterSide::Full);
        // 3 matches + Carol padded + orphan order padded
        assert_eq!(out.len(), 5);
        let padded_left = out.rows().iter().filter(|r| r[0].is_null()).count();
        assert_eq!(padded_left, 1);
    }

    #[test]
    fn right_outer() {
        let mut orphan_orders = orders();
        orphan_orders.push(vec![Cell::Int(99), Cell::Int(12)]);
        let out = outer_join(&customers(), &orphan_orders, "id", "c_id", OuterSide::Right);
        assert_eq!(out.len(), 4, "3 matches + orphan; Carol dropped");
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut l = Relation::new("l", Schema::new(&["k"]));
        l.push(vec![Cell::Null]);
        let mut r = Relation::new("r", Schema::new(&["k"]));
        r.push(vec![Cell::Null]);
        assert_eq!(hash_join(&l, &r, "k", "k").len(), 0);
        let out = outer_join(&l, &r, "k", "k", OuterSide::Full);
        assert_eq!(out.len(), 2, "both preserved as unmatched");
    }

    #[test]
    fn set_operations() {
        let mut a = Relation::new("a", Schema::new(&["x"]));
        a.extend([vec![Cell::Int(1)], vec![Cell::Int(2)], vec![Cell::Int(2)]]);
        let mut b = Relation::new("b", Schema::new(&["x"]));
        b.extend([vec![Cell::Int(2)], vec![Cell::Int(3)]]);
        assert_eq!(union(&a, &b).len(), 3);
        assert_eq!(intersect(&a, &b).len(), 1);
        assert_eq!(except(&a, &b).len(), 1);
        assert_eq!(except(&b, &a).rows()[0][0], Cell::Int(3));
    }
}
