//! # fdm-durability
//!
//! Durability substrate for the FDM transaction layer: a segmented
//! write-ahead log, canonical checkpoints, and crash recovery.
//!
//! The paper's model makes durability unusually simple: the whole
//! database is **one persistent value**, so
//!
//! * a *checkpoint* is just the canonical serialization of that one value
//!   at some version (module [`checkpoint`]);
//! * a *WAL record* is just the writeset of one commit — the same ops the
//!   in-memory commit replays onto the root (module [`wal`]);
//! * *recovery* is: load the newest valid checkpoint, replay the WAL tail
//!   through the same commit machinery, truncate at the first torn record
//!   (module [`recovery`]).
//!
//! There is no page model, no undo log, no fuzzy-checkpoint protocol:
//! persistent values never change in place, so every checkpoint is
//! trivially consistent and the WAL is redo-only.
//!
//! The serialization (module [`codec`]) is **canonical**: attributes in
//! sorted name order, floats by bit pattern — the same discipline as the
//! tuple fingerprint cache — so byte equality of encodings is value
//! equality and a re-encoded recovery is byte-stable.
//!
//! Fault injection (module `crash`, compiled under `cfg(test)` or the
//! `fault-injection` feature) cuts writes at an arbitrary byte, flips
//! bits, duplicates the tail record, and drops fsyncs, letting the test
//! suite prove the recovery contract: **for every crash point, recovery
//! yields exactly a prefix of the committed history, and never loses an
//! acknowledged (fsynced) commit.**
//!
//! This crate deliberately knows nothing about transactions: it stores
//! and returns [`WalOp`]s; `fdm-txn` converts them to and from its own
//! writeset ops and drives replay through its commit validation.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
#[cfg(any(test, feature = "fault-injection"))]
pub mod crash;
pub mod error;
pub mod recovery;
pub mod wal;

#[cfg(any(test, feature = "fault-injection"))]
pub use checkpoint::write_checkpoint_faulty;
pub use checkpoint::{list_checkpoints, load_checkpoint, prune_checkpoints, write_checkpoint};
pub use codec::{decode_database, decode_ops, encode_database, encode_ops, WalOp};
#[cfg(any(test, feature = "fault-injection"))]
pub use crash::CrashPlan;
pub use error::DurabilityError;
pub use recovery::{recover, verify_integrity, IntegrityReport, Recovered, WalCommit};
pub use wal::{
    check_record_payload, AppendAck, DurabilityConfig, SyncPolicy, Wal, MAX_RECORD_BYTES,
};

/// Commit version number (re-exported from `fdm-storage` for convenience).
pub type Version = fdm_storage::Version;
