//! I/O-layer fault injection: simulated crashes, torn writes, bit flips,
//! duplicated records, and lost fsyncs.
//!
//! Compiled only under `cfg(test)` or the `fault-injection` feature —
//! production builds carry none of this. The design mirrors the
//! transaction layer's `FaultPlan`: a shared [`CrashPlan`] handle is
//! installed on the writer, faults are armed from the test, and fired
//! counters prove each fault actually triggered (a fault test that
//! silently injects nothing is worse than no test).
//!
//! The plan models the durable medium with two global byte counters:
//! everything the writer pushed ([`CrashPlan::written_bytes`]) and
//! everything a *successful* fsync has made durable
//! ([`CrashPlan::durable_bytes`]). With [`CrashPlan::drop_fsync`] armed
//! the writer believes its fsyncs succeed while the durable counter
//! stays behind — a test simulates power loss by truncating the WAL to
//! `durable_bytes()` and proving recovery never loses anything *below*
//! that boundary.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A plan of I/O faults to inject into the WAL/checkpoint write path.
///
/// All faults are armed from the outside through `&self`; the writer
/// consumes them through the `pub(crate)` hooks. After a cut fires, the
/// plan is *crashed*: every further write or fsync through it fails with
/// [`crate::DurabilityError::Crashed`], modelling a dead machine.
#[derive(Default)]
pub struct CrashPlan {
    /// Cut the stream after this many total bytes, then crash.
    cut_at: Mutex<Option<u64>>,
    /// Flip bit `1 << (b % 8)` of the byte at this global offset.
    flip: Mutex<Option<(u64, u8)>>,
    /// Append the next WAL record twice.
    dup_tail: AtomicBool,
    /// Report fsync success without syncing.
    drop_fsync: AtomicBool,
    /// Set once a cut fires; all further I/O through the plan fails.
    crashed: AtomicBool,
    /// Total bytes pushed through faulty writes.
    written: AtomicU64,
    /// Bytes made durable by the last *successful* fsync.
    durable: AtomicU64,
    /// Number of cut faults that fired.
    pub cuts_fired: AtomicUsize,
    /// Number of bit flips that fired.
    pub flips_fired: AtomicUsize,
    /// Number of duplicated records that fired.
    pub dups_fired: AtomicUsize,
    /// Number of fsyncs swallowed.
    pub fsyncs_dropped: AtomicUsize,
}

impl CrashPlan {
    /// Creates an empty plan (no faults armed).
    pub fn new() -> Arc<CrashPlan> {
        Arc::new(CrashPlan::default())
    }

    /// Arms a torn write: the byte stream is cut after `offset` total
    /// bytes (counted across all writes through this plan) and the writer
    /// crashes — everything after the cut is lost, like a power failure
    /// mid-`write(2)`.
    pub fn cut_write_at(&self, offset: u64) {
        *self.cut_at.lock() = Some(offset);
    }

    /// Arms a single bit flip at global byte `offset`, bit `bit % 8` —
    /// media corruption rather than a crash; the writer keeps going.
    pub fn flip_bit_at(&self, offset: u64, bit: u8) {
        *self.flip.lock() = Some((offset, bit % 8));
    }

    /// Arms a one-shot duplication of the next WAL record — the signature
    /// of a retried append racing a crash. Recovery must deduplicate by
    /// version.
    pub fn duplicate_tail_record(&self) {
        self.dup_tail.store(true, Ordering::SeqCst);
    }

    /// Arms sticky fsync loss: every subsequent fsync reports success
    /// without syncing, so the writer's durable watermark runs ahead of
    /// the medium. [`Self::durable_bytes`] keeps the true boundary.
    pub fn drop_fsync(&self) {
        self.drop_fsync.store(true, Ordering::SeqCst);
    }

    /// `true` once an armed cut has fired (the simulated machine is dead).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Total bytes pushed through faulty writes so far.
    pub fn written_bytes(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// Bytes actually made durable (advanced only by *real* fsyncs).
    pub fn durable_bytes(&self) -> u64 {
        self.durable.load(Ordering::SeqCst)
    }

    /// Filters a pending write of `buf` bytes. Returns the number of
    /// bytes to actually write (possibly fewer than `buf.len()` when a
    /// cut fires) and mutates `buf` in place for armed bit flips. Returns
    /// `None` if the plan has already crashed — the caller must fail with
    /// `Crashed` without writing.
    pub(crate) fn filter_write(&self, buf: &mut [u8]) -> Option<usize> {
        if self.crashed() {
            return None;
        }
        let start = self.written.load(Ordering::SeqCst);
        let len = buf.len() as u64;
        {
            // hold the guard across test-and-clear: `if let` on a fresh
            // `.lock()` would re-lock inside its own borrow and deadlock
            let mut flip = self.flip.lock();
            if let Some((off, bit)) = *flip {
                if off >= start && off < start + len {
                    buf[(off - start) as usize] ^= 1 << bit;
                    *flip = None;
                    self.flips_fired.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let mut n = buf.len();
        if let Some(cut) = *self.cut_at.lock() {
            if start + len > cut {
                n = cut.saturating_sub(start) as usize;
                self.crashed.store(true, Ordering::SeqCst);
                self.cuts_fired.fetch_add(1, Ordering::SeqCst);
            }
        }
        self.written.fetch_add(n as u64, Ordering::SeqCst);
        Some(n)
    }

    /// Consumes the one-shot duplicate-record fault.
    pub(crate) fn take_duplicate(&self) -> bool {
        let fired = self.dup_tail.swap(false, Ordering::SeqCst);
        if fired {
            self.dups_fired.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Consulted before each fsync. Returns `false` if the fsync must be
    /// skipped (while still reported as success to the writer); advances
    /// the durable boundary when the fsync is real. Returns `None` when
    /// crashed.
    pub(crate) fn filter_fsync(&self) -> Option<bool> {
        if self.crashed() {
            return None;
        }
        if self.drop_fsync.load(Ordering::SeqCst) {
            self.fsyncs_dropped.fetch_add(1, Ordering::SeqCst);
            return Some(false);
        }
        self.durable
            .store(self.written.load(Ordering::SeqCst), Ordering::SeqCst);
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_truncates_and_crashes() {
        let plan = CrashPlan::new();
        plan.cut_write_at(10);
        let mut a = vec![0u8; 8];
        assert_eq!(plan.filter_write(&mut a), Some(8), "below the cut: full");
        let mut b = vec![0u8; 8];
        assert_eq!(plan.filter_write(&mut b), Some(2), "cut mid-write");
        assert!(plan.crashed());
        assert_eq!(plan.cuts_fired.load(Ordering::SeqCst), 1);
        let mut c = vec![0u8; 4];
        assert_eq!(plan.filter_write(&mut c), None, "dead after the cut");
        assert_eq!(plan.filter_fsync(), None);
        assert_eq!(plan.written_bytes(), 10);
    }

    #[test]
    fn flip_fires_once_at_the_right_byte() {
        let plan = CrashPlan::new();
        plan.flip_bit_at(5, 3);
        let mut a = vec![0u8; 4];
        plan.filter_write(&mut a);
        assert_eq!(a, vec![0, 0, 0, 0], "offset 5 not reached yet");
        let mut b = vec![0u8; 4];
        plan.filter_write(&mut b);
        assert_eq!(b, vec![0, 0b1000, 0, 0], "byte 5 = index 1 of this write");
        assert_eq!(plan.flips_fired.load(Ordering::SeqCst), 1);
        let mut c = vec![0u8; 4];
        plan.filter_write(&mut c);
        assert_eq!(c, vec![0, 0, 0, 0], "one-shot");
    }

    #[test]
    fn dropped_fsyncs_freeze_the_durable_boundary() {
        let plan = CrashPlan::new();
        let mut a = vec![0u8; 6];
        plan.filter_write(&mut a);
        assert_eq!(plan.filter_fsync(), Some(true));
        assert_eq!(plan.durable_bytes(), 6);
        plan.drop_fsync();
        let mut b = vec![0u8; 6];
        plan.filter_write(&mut b);
        assert_eq!(plan.filter_fsync(), Some(false), "swallowed");
        assert_eq!(plan.durable_bytes(), 6, "boundary frozen");
        assert_eq!(plan.written_bytes(), 12);
        assert_eq!(plan.fsyncs_dropped.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_is_one_shot() {
        let plan = CrashPlan::new();
        assert!(!plan.take_duplicate());
        plan.duplicate_tail_record();
        assert!(plan.take_duplicate());
        assert!(!plan.take_duplicate());
        assert_eq!(plan.dups_fired.load(Ordering::SeqCst), 1);
    }
}
