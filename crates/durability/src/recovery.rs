//! Crash recovery: newest valid checkpoint + gapless WAL tail replay.
//!
//! ## The recovery state machine
//!
//! 1. **Pick a checkpoint.** Checkpoints are tried newest-first; a
//!    checkpoint that fails validation (torn `.tmp` never counts — it
//!    was never renamed) falls back to the next older one. No valid
//!    checkpoint at all is [`DurabilityError::CheckpointMissing`].
//! 2. **Scan the segments.** Every record is length- and CRC-validated.
//!    An invalid record is classified by *lookahead*: if a valid record
//!    parses right after it (using its stated length), the log continues
//!    past the damage — that is mid-log corruption
//!    ([`DurabilityError::ChecksumMismatch`], a hard error, because
//!    truncating would drop acknowledged commits). If nothing valid
//!    follows and we are in the last segment, it is the expected torn
//!    tail of a crash mid-append: recovery truncates there. Anywhere
//!    else it is a hard error.
//! 3. **Order, dedup, check contiguity.** Records are deduplicated by
//!    version (a duplicated tail record is a legal crash artifact),
//!    records at or below the checkpoint are skipped (their effects are
//!    inside it), and the rest must form a gapless `checkpoint+1..`
//!    sequence — a gap is [`DurabilityError::VersionGap`].
//! 4. **Replay.** The caller (the transaction store) applies the
//!    surviving commits through its normal commit machinery, rebuilding
//!    the in-memory root, history, and commit log.
//!
//! The contract proven by the crash-sweep tests: for *every* crash
//! point, this procedure yields exactly a prefix of the committed
//! history, and the prefix covers every commit whose fsync completed.

use crate::checkpoint::{list_checkpoints, load_checkpoint};
use crate::codec::{crc32, decode_ops, WalOp};
use crate::error::{DurabilityError, Result};
use crate::wal::{
    parse_segment_name, DurabilityConfig, MAX_RECORD_BYTES, RECORD_HEADER, WAL_MAGIC,
};
use fdm_core::DatabaseF;
use fdm_storage::Version;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One commit recovered from the WAL, ready for replay.
#[derive(Clone, Debug)]
pub struct WalCommit {
    /// The commit's version.
    pub version: Version,
    /// Its decoded writeset.
    pub ops: Vec<WalOp>,
}

/// Everything recovery found in a durability directory.
///
/// `Debug` summarizes versions and counts — it deliberately does not
/// dump the recovered database value.
pub struct Recovered {
    /// Version of the checkpoint that anchors the rebuild.
    pub checkpoint_version: Version,
    /// The checkpointed database value.
    pub db: DatabaseF,
    /// Commits after the checkpoint, gapless and version-ordered.
    pub commits: Vec<WalCommit>,
    /// `true` if a torn tail was found (and will be truncated on resume).
    pub torn: bool,
    /// The next version the resumed WAL should expect.
    pub next_version: Version,
    /// Repair point for [`crate::wal::Wal::resume`]: the last segment and
    /// its valid byte length. `None` if no segment file exists.
    pub tail: Option<(PathBuf, u64)>,
}

impl std::fmt::Debug for Recovered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovered")
            .field("checkpoint_version", &self.checkpoint_version)
            .field("commits", &self.commits.len())
            .field("torn", &self.torn)
            .field("next_version", &self.next_version)
            .finish()
    }
}

/// Integrity report of a durability directory (the fsck output).
#[derive(Clone, Debug)]
pub struct IntegrityReport {
    /// Every checkpoint present, with its validation result.
    pub checkpoints: Vec<(Version, bool)>,
    /// Number of WAL segment files.
    pub segments: usize,
    /// Number of valid WAL records across all segments.
    pub records: usize,
    /// The checkpoint recovery would anchor on.
    pub checkpoint_version: Version,
    /// The last version recovery would reach after replay.
    pub replay_to: Version,
    /// `true` if the log ends in a (repairable) torn tail.
    pub torn_tail: bool,
}

/// What a segment scan found.
struct SegmentScan {
    /// Valid records: `(version, ops payload)` in file order.
    records: Vec<(Version, Vec<u8>)>,
    /// Byte offset just past the last valid record.
    valid_bytes: u64,
    /// First invalid record, if any.
    anomaly: Option<Anomaly>,
}

enum Anomaly {
    /// Partial/corrupt record with nothing valid after it.
    Torn { offset: u64 },
    /// Corrupt record with valid data following — not a crash artifact.
    Checksum { offset: u64 },
}

/// Parses one segment's bytes into records, classifying any damage.
fn scan_segment(bytes: &[u8]) -> Result<SegmentScan> {
    if bytes.len() < WAL_MAGIC.len() {
        // a torn segment creation (partial or empty magic)
        return Ok(SegmentScan {
            records: Vec::new(),
            valid_bytes: 0,
            anomaly: Some(Anomaly::Torn { offset: 0 }),
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DurabilityError::Corrupt {
            detail: "bad WAL segment magic".into(),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut anomaly = None;
    while pos < bytes.len() {
        match parse_record_at(bytes, pos) {
            ParsedRecord::Valid { version, ops, end } => {
                records.push((version, ops));
                pos = end;
            }
            ParsedRecord::Invalid => {
                // lookahead: does a valid record follow at the stated
                // boundary? then the log continues and this is mid-log
                // corruption, not a torn tail.
                let looks_continued = stated_end(bytes, pos)
                    .map(|end| matches!(parse_record_at(bytes, end), ParsedRecord::Valid { .. }))
                    .unwrap_or(false);
                anomaly = Some(if looks_continued {
                    Anomaly::Checksum { offset: pos as u64 }
                } else {
                    Anomaly::Torn { offset: pos as u64 }
                });
                break;
            }
        }
    }
    Ok(SegmentScan {
        records,
        valid_bytes: pos as u64,
        anomaly,
    })
}

enum ParsedRecord {
    Valid {
        version: Version,
        ops: Vec<u8>,
        end: usize,
    },
    Invalid,
}

/// Where the record starting at `pos` claims to end, if its header is
/// readable and the claim is sane.
fn stated_end(bytes: &[u8], pos: usize) -> Option<usize> {
    if bytes.len() - pos < RECORD_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let end = pos + RECORD_HEADER + len as usize;
    (end <= bytes.len()).then_some(end)
}

fn parse_record_at(bytes: &[u8], pos: usize) -> ParsedRecord {
    let Some(end) = stated_end(bytes, pos) else {
        return ParsedRecord::Invalid;
    };
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
    let payload = &bytes[pos + RECORD_HEADER..end];
    if payload.len() < 8 || crc32(payload) != crc {
        return ParsedRecord::Invalid;
    }
    let version = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    ParsedRecord::Valid {
        version,
        ops: payload[8..].to_vec(),
        end,
    }
}

/// Lists WAL segments in `dir`, sorted ascending by start version.
fn list_segments(dir: &Path) -> Result<Vec<(Version, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(v) = parse_segment_name(name) {
                segs.push((v, entry.path()));
            }
        }
    }
    segs.sort();
    Ok(segs)
}

fn file_label(path: &Path) -> String {
    path.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("<segment>")
        .to_string()
}

/// Recovers the durable state of `cfg.dir`: checkpoint, replayable
/// commits, and the tail repair point. Read-only — the actual tail
/// truncation happens when the WAL resumes.
pub fn recover(cfg: &DurabilityConfig) -> Result<Recovered> {
    let ckpts = list_checkpoints(&cfg.dir)?;
    if ckpts.is_empty() {
        return Err(DurabilityError::CheckpointMissing {
            dir: cfg.dir.display().to_string(),
        });
    }
    let mut anchor = None;
    let mut newest_err = None;
    for (v, path) in ckpts.iter().rev() {
        match load_checkpoint(path) {
            Ok((loaded_v, db)) => {
                anchor = Some((loaded_v, db));
                break;
            }
            Err(e) => {
                if newest_err.is_none() {
                    newest_err = Some((*v, e));
                }
            }
        }
    }
    let Some((checkpoint_version, db)) = anchor else {
        let (_, e) = newest_err.expect("at least one checkpoint failed");
        return Err(e);
    };

    let segments = list_segments(&cfg.dir)?;
    let mut by_version: BTreeMap<Version, Vec<u8>> = BTreeMap::new();
    let mut torn = false;
    let mut tail = None;
    let last_idx = segments.len().saturating_sub(1);
    for (i, (_, path)) in segments.iter().enumerate() {
        let bytes = std::fs::read(path)?;
        let scan = scan_segment(&bytes)?;
        let is_last = i == last_idx;
        match scan.anomaly {
            Some(Anomaly::Checksum { offset }) => {
                return Err(DurabilityError::ChecksumMismatch {
                    file: file_label(path),
                    offset,
                });
            }
            Some(Anomaly::Torn { offset }) => {
                if !is_last {
                    // torn data mid-log with later segments following:
                    // not a crash tail, refuse
                    return Err(DurabilityError::ChecksumMismatch {
                        file: file_label(path),
                        offset,
                    });
                }
                torn = true;
            }
            None => {}
        }
        for (v, ops) in scan.records {
            // duplicate tail records are legal crash artifacts: first wins
            by_version.entry(v).or_insert(ops);
        }
        if is_last {
            tail = Some((path.clone(), scan.valid_bytes));
        }
    }

    let mut commits = Vec::new();
    for (expected, (v, ops_bytes)) in
        (checkpoint_version + 1..).zip(by_version.range(checkpoint_version + 1..))
    {
        if *v != expected {
            return Err(DurabilityError::VersionGap {
                expected,
                found: *v,
            });
        }
        commits.push(WalCommit {
            version: *v,
            ops: decode_ops(ops_bytes)?,
        });
    }

    let next_version = commits
        .last()
        .map(|c| c.version)
        .unwrap_or(checkpoint_version)
        + 1;
    Ok(Recovered {
        checkpoint_version,
        db,
        commits,
        torn,
        next_version,
        tail,
    })
}

/// Full fsck of a durability directory: validates every checkpoint and
/// every WAL record (including op decode), and reports what recovery
/// would do. Hard corruption (mid-log checksum damage, version gaps, no
/// valid checkpoint) is an error; a torn tail is a *finding*, not an
/// error — it is exactly what a crash leaves behind.
pub fn verify_integrity(cfg: &DurabilityConfig) -> Result<IntegrityReport> {
    let mut checkpoints = Vec::new();
    for (v, path) in list_checkpoints(&cfg.dir)? {
        checkpoints.push((v, load_checkpoint(&path).is_ok()));
    }
    let recovered = recover(cfg)?;
    let segments = list_segments(&cfg.dir)?.len();
    Ok(IntegrityReport {
        checkpoints,
        segments,
        records: recovered.commits.len(),
        checkpoint_version: recovered.checkpoint_version,
        replay_to: recovered.next_version - 1,
        torn_tail: recovered.torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_checkpoint;
    use crate::codec::encode_ops;
    use crate::wal::{build_record, segment_path, Wal};
    use fdm_core::{Name, RelationF, TupleF, Value};
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdm-rec-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base_db() -> DatabaseF {
        DatabaseF::new("db").with_relation(RelationF::new("r", &["k"]))
    }

    fn upsert(k: i64, v: i64) -> Vec<u8> {
        encode_ops(&[WalOp::Upsert {
            rel: Name::from("r"),
            key: Value::Int(k),
            tuple: Arc::new(TupleF::builder("t").attr("v", v).build()),
        }])
        .unwrap()
    }

    /// A directory with checkpoint v0 and commits 1..=n in the WAL.
    fn store_dir(tag: &str, n: u64) -> (PathBuf, DurabilityConfig) {
        let dir = scratch(tag);
        let cfg = DurabilityConfig::new(&dir);
        write_checkpoint(&dir, 0, &base_db()).unwrap();
        let mut wal = Wal::create(&cfg, 1).unwrap();
        for v in 1..=n {
            wal.append(v, &upsert(v as i64, (v * 10) as i64)).unwrap();
        }
        (dir, cfg)
    }

    #[test]
    fn clean_log_recovers_fully() {
        let (dir, cfg) = store_dir("clean", 5);
        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.checkpoint_version, 0);
        assert_eq!(rec.commits.len(), 5);
        assert_eq!(rec.next_version, 6);
        assert!(!rec.torn);
        let report = verify_integrity(&cfg).unwrap();
        assert_eq!(report.replay_to, 5);
        assert!(!report.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let (dir, cfg) = store_dir("torn", 5);
        let seg = segment_path(&dir, 1);
        let bytes = std::fs::read(&seg).unwrap();
        // cut the last record in half
        std::fs::write(&seg, &bytes[..bytes.len() - 10]).unwrap();
        let rec = recover(&cfg).unwrap();
        assert!(rec.torn);
        assert_eq!(rec.commits.len(), 4, "prefix: last commit lost to the tear");
        assert_eq!(rec.next_version, 5);
        let report = verify_integrity(&cfg).unwrap();
        assert!(report.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_bit_flip_is_a_hard_error() {
        let (dir, cfg) = store_dir("flip", 5);
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        // flip one bit in the payload of an early record (well before the tail)
        bytes[20] ^= 0x04;
        std::fs::write(&seg, &bytes).unwrap();
        let err = recover(&cfg).unwrap_err();
        assert!(
            matches!(err, DurabilityError::ChecksumMismatch { .. }),
            "damage with valid data after it must NOT be truncated away: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicated_tail_record_is_deduplicated() {
        let (dir, cfg) = store_dir("dup", 3);
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let dup = build_record(3, &upsert(3, 30));
        bytes.extend_from_slice(&dup);
        std::fs::write(&seg, &bytes).unwrap();
        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.commits.len(), 3, "duplicate v3 collapsed");
        assert_eq!(rec.next_version, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_gap_is_a_hard_error() {
        let dir = scratch("gap");
        let cfg = DurabilityConfig::new(&dir);
        write_checkpoint(&dir, 0, &base_db()).unwrap();
        // hand-build a segment with v1 then v3
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.extend_from_slice(&build_record(1, &upsert(1, 10)));
        bytes.extend_from_slice(&build_record(3, &upsert(3, 30)));
        std::fs::write(segment_path(&dir, 1), &bytes).unwrap();
        let err = recover(&cfg).unwrap_err();
        assert!(
            matches!(
                err,
                DurabilityError::VersionGap {
                    expected: 2,
                    found: 3
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_a_typed_error() {
        let dir = scratch("nockpt");
        let cfg = DurabilityConfig::new(&dir);
        let mut wal = Wal::create(&cfg, 1).unwrap();
        wal.append(1, &upsert(1, 10)).unwrap();
        assert!(matches!(
            recover(&cfg).unwrap_err(),
            DurabilityError::CheckpointMissing { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let (dir, cfg) = store_dir("fallback", 4);
        // checkpoint at v2 and v4, then corrupt v4
        let db2 = base_db();
        write_checkpoint(&dir, 2, &db2).unwrap();
        let p4 = write_checkpoint(&dir, 4, &db2).unwrap();
        let mut bytes = std::fs::read(&p4).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p4, &bytes).unwrap();
        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.checkpoint_version, 2, "fell back past the corrupt v4");
        assert_eq!(rec.commits.len(), 2, "v3, v4 replay from the WAL");
        assert_eq!(rec.next_version, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_below_the_checkpoint_are_skipped() {
        let (dir, cfg) = store_dir("skip", 6);
        write_checkpoint(&dir, 4, &base_db()).unwrap();
        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.checkpoint_version, 4);
        let versions: Vec<Version> = rec.commits.iter().map(|c| c.version).collect();
        assert_eq!(versions, vec![5, 6]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_tail_segment_is_fine() {
        let (dir, cfg) = store_dir("emptyseg", 2);
        // simulate a crash right after rotation: magic-only next segment
        std::fs::write(segment_path(&dir, 3), WAL_MAGIC).unwrap();
        let rec = recover(&cfg).unwrap();
        assert_eq!(rec.commits.len(), 2);
        assert!(!rec.torn);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
