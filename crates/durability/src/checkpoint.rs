//! Checkpoints: the canonical serialization of the whole database value
//! at one committed version.
//!
//! Because the database is a persistent value, a checkpoint requires no
//! quiescence and no fuzzy-checkpoint protocol: the writer serializes an
//! immutable snapshot while commits keep installing new roots. The file
//! layout is
//!
//! ```text
//! 8  bytes  magic "FDMCKPT1"
//! u32       payload length
//! u32       CRC-32 (IEEE) of the payload
//! payload   u64 version (LE) ‖ codec::encode_database bytes
//! ```
//!
//! written to `checkpoint-<version, 20 digits>.ckpt.tmp` and atomically
//! renamed, so a crash mid-checkpoint leaves either the complete old
//! file set or the complete new one — never a half checkpoint under the
//! real name. Retention keeps the newest N checkpoints
//! ([`crate::DurabilityConfig::retain_checkpoints`]); WAL segments wholly below
//! the oldest retained checkpoint are pruned with them.

use crate::codec::{crc32, decode_database, encode_database};
use crate::error::{DurabilityError, Result};
use crate::wal::{parse_segment_name, sync_dir};
use fdm_core::DatabaseF;
use fdm_storage::Version;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

#[cfg(any(test, feature = "fault-injection"))]
use crate::crash::CrashPlan;
#[cfg(any(test, feature = "fault-injection"))]
use std::sync::Arc;

/// Magic bytes opening every checkpoint file.
pub(crate) const CKPT_MAGIC: &[u8; 8] = b"FDMCKPT1";

/// Path of the checkpoint for `version`.
pub(crate) fn checkpoint_path(dir: &Path, version: Version) -> PathBuf {
    dir.join(format!("checkpoint-{version:020}.ckpt"))
}

/// Parses `checkpoint-<v>.ckpt` back to its version.
pub(crate) fn parse_checkpoint_name(name: &str) -> Option<Version> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Rejects a checkpoint payload whose length cannot be stated in the
/// format's `u32` field. Writing it anyway would wrap the stated
/// length, producing a file `load_checkpoint` always rejects — and with
/// retention pruning older checkpoints, repeated auto-checkpoints could
/// leave the directory with no loadable checkpoint at all.
pub(crate) fn check_checkpoint_payload(version: Version, len: u64) -> Result<()> {
    if len > u32::MAX as u64 {
        return Err(DurabilityError::TooLarge {
            what: format!("checkpoint v{version} payload"),
            bytes: len,
            max: u32::MAX as u64,
        });
    }
    Ok(())
}

/// Writes the checkpoint for `version` atomically (tmp + rename + dir
/// fsync) and returns its final path.
pub fn write_checkpoint(dir: &Path, version: Version, db: &DatabaseF) -> Result<PathBuf> {
    write_checkpoint_impl(
        dir,
        version,
        db,
        #[cfg(any(test, feature = "fault-injection"))]
        None,
    )
}

/// [`write_checkpoint`] with an injected crash plan on the write path
/// (fault injection only): a cut mid-checkpoint leaves a torn `.tmp`
/// file that never reaches the real name.
#[cfg(any(test, feature = "fault-injection"))]
pub fn write_checkpoint_faulty(
    dir: &Path,
    version: Version,
    db: &DatabaseF,
    plan: &Arc<CrashPlan>,
) -> Result<PathBuf> {
    write_checkpoint_impl(dir, version, db, Some(plan))
}

fn write_checkpoint_impl(
    dir: &Path,
    version: Version,
    db: &DatabaseF,
    #[cfg(any(test, feature = "fault-injection"))] plan: Option<&Arc<CrashPlan>>,
) -> Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut payload = Vec::new();
    payload.extend_from_slice(&version.to_le_bytes());
    payload.extend_from_slice(&encode_database(db)?);
    check_checkpoint_payload(version, payload.len() as u64)?;
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(CKPT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let path = checkpoint_path(dir, version);
    let tmp = path.with_extension("ckpt.tmp");
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    #[cfg(any(test, feature = "fault-injection"))]
    if let Some(plan) = plan {
        let mut buf = bytes.clone();
        let n = plan
            .filter_write(&mut buf)
            .ok_or(DurabilityError::Crashed)?;
        file.write_all(&buf[..n])?;
        if n < bytes.len() {
            let _ = file.sync_data();
            return Err(DurabilityError::Crashed);
        }
        file.sync_data()?;
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir)?;
        return Ok(path);
    }
    file.write_all(&bytes)?;
    file.sync_data()?;
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(path)
}

/// Lists checkpoint files in `dir`, sorted ascending by version.
/// Leftover `.tmp` files from a crashed checkpoint are ignored.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(Version, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(v) = parse_checkpoint_name(name) {
                out.push((v, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads and validates one checkpoint file: magic, length, CRC, and
/// agreement between the payload version and the file name.
pub fn load_checkpoint(path: &Path) -> Result<(Version, DatabaseF)> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("<checkpoint>")
        .to_string();
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 16 || &bytes[..8] != CKPT_MAGIC {
        return Err(DurabilityError::Corrupt {
            detail: format!("{file_name}: bad checkpoint magic"),
        });
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if bytes.len() != 16 + len {
        return Err(DurabilityError::Corrupt {
            detail: format!(
                "{file_name}: stated payload {len} bytes, file holds {}",
                bytes.len().saturating_sub(16)
            ),
        });
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return Err(DurabilityError::ChecksumMismatch {
            file: file_name,
            offset: 16,
        });
    }
    if payload.len() < 8 {
        return Err(DurabilityError::Corrupt {
            detail: format!("{file_name}: payload shorter than its version header"),
        });
    }
    let version = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    if let Some(named) = parse_checkpoint_name(&file_name) {
        if named != version {
            return Err(DurabilityError::Corrupt {
                detail: format!("{file_name}: payload is for v{version}"),
            });
        }
    }
    let db = decode_database(&payload[8..])?;
    Ok((version, db))
}

/// Applies retention: keeps the newest `retain` checkpoints, removes
/// older checkpoint files and every WAL segment wholly below the oldest
/// retained checkpoint. Returns the removed paths.
pub fn prune_checkpoints(dir: &Path, retain: usize) -> Result<Vec<PathBuf>> {
    let retain = retain.max(1);
    let ckpts = list_checkpoints(dir)?;
    let mut removed = Vec::new();
    if ckpts.len() <= retain {
        return Ok(removed);
    }
    let cut = ckpts.len() - retain;
    let oldest_kept = ckpts[cut].0;
    for (_, path) in &ckpts[..cut] {
        std::fs::remove_file(path)?;
        removed.push(path.clone());
    }
    // A segment is removable iff the *next* segment also starts at or
    // below the oldest kept checkpoint — then every record in it is below
    // the checkpoint. The last segment always stays.
    let mut segs: Vec<(Version, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(v) = parse_segment_name(name) {
                segs.push((v, entry.path()));
            }
        }
    }
    segs.sort();
    for i in 0..segs.len() {
        let next_start = segs.get(i + 1).map(|(v, _)| *v);
        if let Some(next) = next_start {
            if next <= oldest_kept + 1 {
                std::fs::remove_file(&segs[i].1)?;
                removed.push(segs[i].1.clone());
            }
        }
    }
    sync_dir(dir)?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm_core::{RelationF, TupleF, Value};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdm-ckpt-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_db(n: i64) -> DatabaseF {
        let mut r = RelationF::new("r", &["k"]);
        for i in 0..n {
            r = r
                .insert(
                    Value::Int(i),
                    TupleF::builder("t").attr("v", i * 10).build(),
                )
                .unwrap();
        }
        DatabaseF::new("db").with_relation(r)
    }

    #[test]
    fn checkpoint_roundtrips() {
        let dir = scratch("roundtrip");
        let db = small_db(5);
        let path = write_checkpoint(&dir, 7, &db).unwrap();
        let (v, back) = load_checkpoint(&path).unwrap();
        assert_eq!(v, 7);
        assert_eq!(back.relation("r").unwrap().len(), 5);
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![(7, path)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_detected() {
        let dir = scratch("corrupt");
        let path = write_checkpoint(&dir, 3, &small_db(3)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a payload bit
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint(&path).unwrap_err(),
            DurabilityError::ChecksumMismatch { .. }
        ));
        // truncated file
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            load_checkpoint(&path).unwrap_err(),
            DurabilityError::Corrupt { .. }
        ));
        // bad magic
        std::fs::write(&path, b"NOTMAGIC").unwrap();
        assert!(load_checkpoint(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_name_mismatch_is_detected() {
        let dir = scratch("mismatch");
        let path = write_checkpoint(&dir, 4, &small_db(1)).unwrap();
        let renamed = checkpoint_path(&dir, 9);
        std::fs::rename(&path, &renamed).unwrap();
        let err = load_checkpoint(&renamed).unwrap_err();
        assert!(
            matches!(&err, DurabilityError::Corrupt { detail } if detail.contains("v4")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_old_checkpoints() {
        let dir = scratch("prune");
        for v in [2u64, 5, 9] {
            write_checkpoint(&dir, v, &small_db(v as i64)).unwrap();
        }
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed.len(), 1);
        let left: Vec<Version> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(left, vec![5, 9]);
        // pruning below the retention count is a no-op
        assert!(prune_checkpoints(&dir, 5).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_checkpoint_payloads_are_rejected() {
        // the guard fires exactly where the u32 length field would wrap
        // (a >4 GiB database is not buildable in a test, so the bound
        // is pinned directly)
        assert!(check_checkpoint_payload(7, u32::MAX as u64).is_ok());
        let err = check_checkpoint_payload(7, u32::MAX as u64 + 1).unwrap_err();
        assert!(
            matches!(&err, DurabilityError::TooLarge { what, .. } if what.contains("v7")),
            "{err}"
        );
    }

    #[test]
    fn tmp_files_are_ignored_by_listing() {
        let dir = scratch("tmp");
        write_checkpoint(&dir, 1, &small_db(1)).unwrap();
        std::fs::write(
            dir.join("checkpoint-00000000000000000002.ckpt.tmp"),
            b"junk",
        )
        .unwrap();
        let listed = list_checkpoints(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
