//! Typed errors for the durability subsystem.
//!
//! Every anomaly recovery can meet has its own variant, because the
//! correct *reaction* differs: a [`DurabilityError::TornTail`] is the
//! expected signature of a crash mid-write and recovery repairs it by
//! truncation; a [`DurabilityError::ChecksumMismatch`] in the middle of
//! otherwise-valid data is media corruption and recovery must refuse
//! rather than silently drop acknowledged commits.

use std::fmt;

/// Errors from the WAL, checkpoint, and recovery machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// The WAL ends in a partial or corrupt record with no valid record
    /// after it — the signature of a crash mid-append. Recovery handles
    /// this by truncating the tail; it is a hard error only when met
    /// outside recovery (e.g. by `verify_integrity` in strict mode).
    TornTail {
        /// The segment file containing the torn record.
        file: String,
        /// Byte offset of the first invalid record.
        offset: u64,
    },
    /// A record failed its CRC but a valid record follows it: mid-log
    /// corruption (e.g. a flipped bit), not a torn tail. Truncating here
    /// would drop acknowledged commits, so recovery refuses.
    ChecksumMismatch {
        /// The corrupt file.
        file: String,
        /// Byte offset of the corrupt record (or region).
        offset: u64,
    },
    /// No valid checkpoint exists in the durability directory. A store
    /// directory always carries at least the version-0 checkpoint written
    /// at creation, so this means the directory is not a store (or the
    /// checkpoints were deleted).
    CheckpointMissing {
        /// The directory that was searched.
        dir: String,
    },
    /// The WAL records after the checkpoint are not a contiguous version
    /// sequence (e.g. a middle segment was deleted). Replaying across a
    /// gap would silently skip commits, so recovery refuses.
    VersionGap {
        /// The version recovery expected next.
        expected: u64,
        /// The version actually found.
        found: u64,
    },
    /// A value cannot be serialized: it contains a closure (computed
    /// attribute, computed/hybrid relation body, λ function, or predicate
    /// domain). Raised *before* the commit installs, so an unserializable
    /// write fails cleanly instead of committing in memory and then
    /// failing to log.
    Unserializable {
        /// What was unserializable, e.g. `"computed attribute 'bar' of
        /// tuple 't1'"`.
        what: String,
    },
    /// A payload is too large for the on-disk format: a WAL record
    /// above [`crate::wal::MAX_RECORD_BYTES`] (recovery would classify
    /// its stated length as corruption) or a checkpoint whose length
    /// overflows the format's `u32` field. Raised on the *write* side,
    /// before anything installs or reaches disk — an oversized payload
    /// must fail cleanly, not be acknowledged and then rejected as
    /// corruption on the next open.
    TooLarge {
        /// What was oversized, e.g. `"WAL record payload"` or
        /// `"checkpoint v7 payload"`.
        what: String,
        /// The payload's actual size in bytes.
        bytes: u64,
        /// The format's bound it exceeds.
        max: u64,
    },
    /// Structurally invalid durable data that is not a checksum issue
    /// (bad magic, impossible tag byte, truncated payload inside a
    /// CRC-valid record).
    Corrupt {
        /// Description of the malformation.
        detail: String,
    },
    /// An underlying I/O operation failed.
    Io {
        /// Description of the failed operation.
        detail: String,
    },
    /// The writer hit an injected crash point (fault injection only):
    /// the simulated machine is dead and every further durable operation
    /// fails with this error until the store is re-opened.
    Crashed,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::TornTail { file, offset } => {
                write!(f, "torn WAL tail in {file} at byte {offset}")
            }
            DurabilityError::ChecksumMismatch { file, offset } => {
                write!(
                    f,
                    "checksum mismatch in {file} at byte {offset} (mid-log corruption)"
                )
            }
            DurabilityError::CheckpointMissing { dir } => {
                write!(f, "no valid checkpoint found in {dir}")
            }
            DurabilityError::VersionGap { expected, found } => {
                write!(f, "WAL version gap: expected v{expected}, found v{found}")
            }
            DurabilityError::Unserializable { what } => {
                write!(f, "cannot serialize {what}")
            }
            DurabilityError::TooLarge { what, bytes, max } => {
                write!(
                    f,
                    "{what} is {bytes} bytes, over the {max}-byte format bound"
                )
            }
            DurabilityError::Corrupt { detail } => write!(f, "corrupt durable data: {detail}"),
            DurabilityError::Io { detail } => write!(f, "durability I/O error: {detail}"),
            DurabilityError::Crashed => write!(f, "injected crash: writer is dead"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<fdm_core::FdmError> for DurabilityError {
    fn from(e: fdm_core::FdmError) -> Self {
        DurabilityError::Corrupt {
            detail: format!("decoded value rejected by the model: {e}"),
        }
    }
}

/// Convenience result alias for this crate.
pub type Result<T, E = DurabilityError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DurabilityError::TornTail {
            file: "wal-1.seg".into(),
            offset: 42,
        };
        assert!(e.to_string().contains("torn WAL tail"));
        assert!(e.to_string().contains("42"));
        let e = DurabilityError::VersionGap {
            expected: 5,
            found: 7,
        };
        assert!(e.to_string().contains("expected v5"));
        assert!(e.to_string().contains("found v7"));
        let e = DurabilityError::Unserializable {
            what: "λ function 'f'".into(),
        };
        assert!(e.to_string().contains("cannot serialize"));
        let e = DurabilityError::TooLarge {
            what: "WAL record payload".into(),
            bytes: 300,
            max: 256,
        };
        assert!(e.to_string().contains("300 bytes"));
        assert!(e.to_string().contains("256-byte"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DurabilityError = io.into();
        assert!(matches!(e, DurabilityError::Io { .. }));
        assert!(e.to_string().contains("gone"));
    }
}
