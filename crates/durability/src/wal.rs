//! The append-only segmented write-ahead log.
//!
//! ## Record format
//!
//! Every committed writeset becomes one length-prefixed, CRC-guarded
//! record:
//!
//! ```text
//! u32 len   — payload length in bytes (little-endian)
//! u32 crc   — CRC-32 (IEEE) of the payload
//! payload   — u64 version (LE) ‖ canonical op encoding (codec::encode_ops)
//! ```
//!
//! Records live in segment files `wal-<start-version, 20 digits>.seg`,
//! each beginning with the 8-byte magic `FDMWAL01`; a segment is named
//! after the first version written into it, so the segment list sorts by
//! both name and version. Segments rotate when they exceed
//! [`DurabilityConfig::segment_bytes`].
//!
//! ## Ordering and the pending buffer
//!
//! Commits reach the WAL in CAS-install order *per the commit-log lock*,
//! but two committers that install versions `v` and `v+1` may call in
//! either order. The WAL therefore buffers out-of-order arrivals and
//! writes records in **strict version order** — the on-disk sequence is
//! always gapless, which is what lets recovery equate "contiguous prefix
//! of records" with "prefix of committed history".
//!
//! ## Group commit
//!
//! [`SyncPolicy`] decides when `fsync` runs: `Always` (every append —
//! the strict-durability default), `EveryN(n)` (group commit: at most
//! `n` appends ride on one fsync; a crash may lose the un-synced
//! suffix), or `Never` (fsync only on rotation/close — benchmarking and
//! bulk loads). The append acknowledgement reports the *durable
//! watermark* so callers always know which versions survive a crash.
//! Under `Always` the caller must treat `AppendAck::durable == false`
//! (an out-of-order arrival parked in the pending buffer) as
//! *not yet acknowledged*: the transaction store blocks such commits on
//! the watermark until the gap-filling append's fsync covers them
//! (see `record_commit` in `fdm-txn`).

use crate::codec::crc32;
use crate::error::{DurabilityError, Result};
use fdm_storage::Version;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

#[cfg(any(test, feature = "fault-injection"))]
use crate::crash::CrashPlan;
#[cfg(any(test, feature = "fault-injection"))]
use std::sync::Arc;

/// Magic bytes opening every WAL segment file.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"FDMWAL01";
/// Byte length of a record header (`u32 len` + `u32 crc`).
pub(crate) const RECORD_HEADER: usize = 8;
/// Upper bound on a single record payload. Recovery treats a stated
/// length above this as corruption rather than attempting it as an
/// allocation, so the write side ([`check_record_payload`]) must reject
/// anything that large *before* it is appended and acknowledged.
pub const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// Rejects an ops payload too large to become a valid WAL record (the
/// record payload is the 8-byte version header plus these bytes, and
/// its stated length must stay within [`MAX_RECORD_BYTES`]). This is
/// the write-side twin of recovery's corruption bound: an oversized
/// writeset must fail the commit before it installs — appending it
/// anyway would produce an acknowledged record that the next open
/// classifies as a torn tail and silently truncates.
pub fn check_record_payload(ops_payload_len: usize) -> Result<()> {
    let bytes = ops_payload_len as u64 + 8;
    if bytes > MAX_RECORD_BYTES as u64 {
        return Err(DurabilityError::TooLarge {
            what: "WAL record payload".into(),
            bytes,
            max: MAX_RECORD_BYTES as u64,
        });
    }
    Ok(())
}

/// When the WAL calls `fsync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every append. Strict durability: an acknowledged
    /// commit is on the medium. The default.
    Always,
    /// Group commit: fsync once per `n` appends (and on demand). A crash
    /// can lose at most the un-synced suffix, never an fsynced commit.
    EveryN(u64),
    /// Fsync only on segment rotation and explicit [`Wal::sync`] — for
    /// benchmarks and bulk loads where the tail is expendable.
    Never,
}

/// Configuration of the durability subsystem for one store directory.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and checkpoints.
    pub dir: PathBuf,
    /// Fsync cadence.
    pub sync: SyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// How many checkpoints to retain; WAL segments wholly below the
    /// oldest retained checkpoint are pruned with it.
    pub retain_checkpoints: usize,
    /// Write an automatic checkpoint every this many commits
    /// (`None` = only explicit checkpoints).
    pub checkpoint_every: Option<u64>,
    /// Under [`SyncPolicy::Always`], how long a committer whose record
    /// arrived out of version order waits for the gap below it to fill
    /// (and the covering fsync to run) before its commit *fails* rather
    /// than being acknowledged without a covering fsync. The gap only
    /// stalls if the committer of the missing version died between its
    /// install and its WAL append, so this timeout is a crash detector,
    /// not a pacing knob.
    pub gap_sync_timeout: Duration,
}

impl DurabilityConfig {
    /// Defaults for `dir`: fsync always, 8 MiB segments, 2 retained
    /// checkpoints, auto-checkpoint every 256 commits.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            segment_bytes: 8 * 1024 * 1024,
            retain_checkpoints: 2,
            checkpoint_every: Some(256),
            gap_sync_timeout: Duration::from_secs(2),
        }
    }

    /// Sets the fsync cadence.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Sets the segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(64);
        self
    }

    /// Sets the checkpoint retention count (min 1).
    pub fn with_retain_checkpoints(mut self, n: usize) -> Self {
        self.retain_checkpoints = n.max(1);
        self
    }

    /// Sets the auto-checkpoint cadence (`None` disables).
    pub fn with_checkpoint_every(mut self, every: Option<u64>) -> Self {
        self.checkpoint_every = every.map(|n| n.max(1));
        self
    }

    /// Sets how long an out-of-order committer waits for its version
    /// gap to become durable under [`SyncPolicy::Always`].
    pub fn with_gap_sync_timeout(mut self, timeout: Duration) -> Self {
        self.gap_sync_timeout = timeout;
        self
    }
}

/// Result of one [`Wal::append`]: where this commit stands relative to
/// the durable watermark.
#[derive(Clone, Copy, Debug)]
pub struct AppendAck {
    /// The appended version.
    pub version: Version,
    /// `true` if this version is already on the medium (its fsync ran).
    /// Under group commit, `false` means a later append or an explicit
    /// [`Wal::sync`] will make it durable.
    pub durable: bool,
    /// The highest version known durable after this append.
    pub synced_version: Version,
}

/// Path of the segment whose first record is `start`.
pub(crate) fn segment_path(dir: &Path, start: Version) -> PathBuf {
    dir.join(format!("wal-{start:020}.seg"))
}

/// Parses `wal-<v>.seg` back to its start version.
pub(crate) fn parse_segment_name(name: &str) -> Option<Version> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Builds the on-disk bytes of one record.
pub(crate) fn build_record(version: Version, ops_payload: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + ops_payload.len());
    payload.extend_from_slice(&version.to_le_bytes());
    payload.extend_from_slice(ops_payload);
    let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// The live append half of the write-ahead log.
///
/// Owned behind a mutex by the transaction store; all methods take
/// `&mut self`. Reading the log back is the recovery module's job.
pub struct Wal {
    cfg: DurabilityConfig,
    file: File,
    path: PathBuf,
    /// Bytes written to the current segment (including magic).
    file_bytes: u64,
    /// The next version the on-disk sequence expects.
    next_version: Version,
    /// Out-of-order arrivals awaiting their turn, version → ops payload.
    pending: BTreeMap<Version, Vec<u8>>,
    /// Last version handed to the OS (written, not necessarily synced).
    written_version: Version,
    /// Last version the writer believes durable (see `drop_fsync` faults
    /// for why "believes").
    synced_version: Version,
    /// Appends since the last fsync (drives `SyncPolicy::EveryN`).
    unsynced: u64,
    #[cfg(any(test, feature = "fault-injection"))]
    plan: Option<Arc<CrashPlan>>,
}

impl Wal {
    /// Creates the WAL for a fresh store: first record will be version
    /// `first` (normally 1; version 0 is the creation checkpoint).
    pub fn create(cfg: &DurabilityConfig, first: Version) -> Result<Wal> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = segment_path(&cfg.dir, first);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        sync_dir(&cfg.dir)?;
        Ok(Wal {
            cfg: cfg.clone(),
            file,
            path,
            file_bytes: WAL_MAGIC.len() as u64,
            next_version: first,
            pending: BTreeMap::new(),
            written_version: first.saturating_sub(1),
            synced_version: first.saturating_sub(1),
            unsynced: 0,
            #[cfg(any(test, feature = "fault-injection"))]
            plan: None,
        })
    }

    /// Resumes appending after recovery. `next` is the next version to
    /// log; `tail` is the last valid segment and its valid byte length
    /// (the recovery module's repair point). The tail segment is always
    /// truncated to that length — repairing any torn suffix in place —
    /// then appended to if it has room, otherwise a fresh segment starts.
    pub fn resume(
        cfg: &DurabilityConfig,
        next: Version,
        tail: Option<(PathBuf, u64)>,
    ) -> Result<Wal> {
        if let Some((path, valid_len)) = tail {
            if valid_len < WAL_MAGIC.len() as u64 {
                // not even a whole magic survived: the file is useless,
                // drop it so a later scan doesn't trip over it
                std::fs::remove_file(&path)?;
                sync_dir(&cfg.dir)?;
            } else {
                let mut file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_len)?;
                file.sync_data()?;
                if valid_len < cfg.segment_bytes {
                    use std::io::Seek;
                    file.seek(std::io::SeekFrom::Start(valid_len))?;
                    return Ok(Wal {
                        cfg: cfg.clone(),
                        file,
                        path,
                        file_bytes: valid_len,
                        next_version: next,
                        pending: BTreeMap::new(),
                        written_version: next.saturating_sub(1),
                        synced_version: next.saturating_sub(1),
                        unsynced: 0,
                        #[cfg(any(test, feature = "fault-injection"))]
                        plan: None,
                    });
                }
            }
        }
        Wal::create(cfg, next)
    }

    /// Installs a crash plan on this writer (fault injection only).
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn install_crash_plan(&mut self, plan: Arc<CrashPlan>) {
        self.plan = Some(plan);
    }

    /// The highest version the writer believes durable.
    pub fn synced_version(&self) -> Version {
        self.synced_version
    }

    /// Number of commits buffered waiting for a version-order gap to fill.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Appends the encoded writeset of `version`. Out-of-order versions
    /// are buffered and written once their predecessors arrive; the
    /// on-disk record sequence is always gapless and version-ordered.
    pub fn append(&mut self, version: Version, ops_payload: &[u8]) -> Result<AppendAck> {
        check_record_payload(ops_payload.len())?;
        if version < self.next_version || self.pending.contains_key(&version) {
            return Err(DurabilityError::Corrupt {
                detail: format!("duplicate WAL append of v{version}"),
            });
        }
        self.pending.insert(version, ops_payload.to_vec());
        let mut wrote = 0u64;
        while let Some(payload) = self.pending.remove(&self.next_version) {
            let v = self.next_version;
            self.write_record(v, &payload)?;
            wrote += 1;
        }
        if wrote > 0 {
            match self.cfg.sync {
                SyncPolicy::Always => self.fsync()?,
                SyncPolicy::EveryN(n) => {
                    self.unsynced += wrote;
                    if self.unsynced >= n.max(1) {
                        self.fsync()?;
                    }
                }
                SyncPolicy::Never => {
                    self.unsynced += wrote;
                }
            }
        }
        Ok(AppendAck {
            version,
            durable: self.synced_version >= version,
            synced_version: self.synced_version,
        })
    }

    /// Forces an fsync, making every written record durable.
    pub fn sync(&mut self) -> Result<()> {
        self.fsync()
    }

    fn write_record(&mut self, version: Version, ops_payload: &[u8]) -> Result<()> {
        let rec = build_record(version, ops_payload);
        if self.file_bytes > WAL_MAGIC.len() as u64
            && self.file_bytes + rec.len() as u64 > self.cfg.segment_bytes
        {
            self.rotate(version)?;
        }
        self.write_bytes(&rec)?;
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = self.plan.clone() {
            if plan.take_duplicate() {
                self.write_bytes(&rec)?;
            }
        }
        self.written_version = version;
        self.next_version = version + 1;
        Ok(())
    }

    fn rotate(&mut self, next_start: Version) -> Result<()> {
        self.fsync()?;
        let path = segment_path(&self.cfg.dir, next_start);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        sync_dir(&self.cfg.dir)?;
        self.file = file;
        self.path = path;
        self.file_bytes = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Writes raw bytes through the (possibly faulty) medium.
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = self.plan.clone() {
            let mut buf = bytes.to_vec();
            let n = plan
                .filter_write(&mut buf)
                .ok_or(DurabilityError::Crashed)?;
            self.file.write_all(&buf[..n])?;
            self.file_bytes += n as u64;
            if n < bytes.len() {
                // torn write: flush what the OS got, then die
                let _ = self.file.sync_data();
                return Err(DurabilityError::Crashed);
            }
            return Ok(());
        }
        self.file.write_all(bytes)?;
        self.file_bytes += bytes.len() as u64;
        Ok(())
    }

    fn fsync(&mut self) -> Result<()> {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = self.plan.clone() {
            match plan.filter_fsync() {
                None => return Err(DurabilityError::Crashed),
                Some(false) => {
                    // swallowed: the writer is lied to and advances its
                    // watermark; CrashPlan::durable_bytes keeps the truth
                    self.synced_version = self.written_version;
                    self.unsynced = 0;
                    return Ok(());
                }
                Some(true) => {}
            }
        }
        self.file.sync_data()?;
        self.synced_version = self.written_version;
        self.unsynced = 0;
        Ok(())
    }
}

/// Fsyncs a directory so a freshly created/renamed file inside it
/// survives a crash.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_ops;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdm-wal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn appends_are_written_in_version_order() {
        let dir = scratch("order");
        let cfg = DurabilityConfig::new(&dir);
        let mut wal = Wal::create(&cfg, 1).unwrap();
        let payload = encode_ops(&[]).unwrap();
        // v2 arrives first: buffered, not durable
        let ack = wal.append(2, &payload).unwrap();
        assert!(!ack.durable);
        assert_eq!(wal.pending_len(), 1);
        // v1 arrives: both flush, v2 becomes durable
        let ack = wal.append(1, &payload).unwrap();
        assert!(ack.durable);
        assert_eq!(ack.synced_version, 2);
        assert_eq!(wal.pending_len(), 0);
        // on-disk: magic, then records for v1, v2 in order
        let bytes = std::fs::read(segment_path(&dir, 1)).unwrap();
        assert_eq!(&bytes[..8], WAL_MAGIC);
        let v_first = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(v_first, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_appends_are_rejected() {
        let dir = scratch("dup");
        let cfg = DurabilityConfig::new(&dir);
        let mut wal = Wal::create(&cfg, 1).unwrap();
        let payload = encode_ops(&[]).unwrap();
        wal.append(1, &payload).unwrap();
        assert!(wal.append(1, &payload).is_err());
        wal.append(3, &payload).unwrap();
        assert!(wal.append(3, &payload).is_err(), "pending duplicate too");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = scratch("group");
        let cfg = DurabilityConfig::new(&dir).with_sync(SyncPolicy::EveryN(3));
        let mut wal = Wal::create(&cfg, 1).unwrap();
        let payload = encode_ops(&[]).unwrap();
        assert!(!wal.append(1, &payload).unwrap().durable);
        assert!(!wal.append(2, &payload).unwrap().durable);
        let ack = wal.append(3, &payload).unwrap();
        assert!(ack.durable, "third append triggers the group fsync");
        assert_eq!(ack.synced_version, 3);
        // explicit sync drains a partial group
        assert!(!wal.append(4, &payload).unwrap().durable);
        wal.sync().unwrap();
        assert_eq!(wal.synced_version(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = scratch("rotate");
        let cfg = DurabilityConfig::new(&dir).with_segment_bytes(64);
        let mut wal = Wal::create(&cfg, 1).unwrap();
        let payload = encode_ops(&[]).unwrap();
        for v in 1..=10 {
            wal.append(v, &payload).unwrap();
        }
        let mut segs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_segment_name(e.unwrap().file_name().to_str().unwrap()))
            .collect();
        segs.sort();
        assert!(segs.len() > 1, "rotation happened: {segs:?}");
        assert_eq!(segs[0], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payloads_are_rejected_before_append() {
        // the bound is exact: a record payload of 8 (version) + len
        // bytes must state a length within MAX_RECORD_BYTES
        assert!(check_record_payload(MAX_RECORD_BYTES as usize - 8).is_ok());
        assert!(matches!(
            check_record_payload(MAX_RECORD_BYTES as usize - 7),
            Err(DurabilityError::TooLarge { .. })
        ));
        // wired into append: rejected before anything is buffered or
        // written, and the writer stays usable
        let dir = scratch("oversize");
        let cfg = DurabilityConfig::new(&dir);
        let mut wal = Wal::create(&cfg, 1).unwrap();
        let big = vec![0u8; MAX_RECORD_BYTES as usize];
        let err = wal.append(1, &big).unwrap_err();
        assert!(matches!(err, DurabilityError::TooLarge { .. }), "{err}");
        assert_eq!(wal.pending_len(), 0);
        assert_eq!(wal.synced_version(), 0);
        let payload = encode_ops(&[]).unwrap();
        assert!(wal.append(1, &payload).unwrap().durable);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_names_roundtrip() {
        let p = segment_path(Path::new("/x"), 42);
        let name = p.file_name().unwrap().to_str().unwrap().to_string();
        assert_eq!(parse_segment_name(&name), Some(42));
        assert_eq!(parse_segment_name("wal-.seg"), None);
        assert_eq!(parse_segment_name("checkpoint-1.ckpt"), None);
    }
}
