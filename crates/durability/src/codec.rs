//! Canonical binary serialization of FDM values.
//!
//! The encoding is **deterministic and canonical**: tuple attributes are
//! written in sorted name order (the same discipline as the tuple
//! fingerprint cache from the grouping layer), relations in key order
//! (their persistent-map iteration order), floats by IEEE bit pattern.
//! Two equal values therefore encode to identical bytes, which is what
//! makes checkpoint comparison and the recovery-equivalence tests
//! byte-exact.
//!
//! ## What cannot be serialized
//!
//! FDM erases the boundary between stored and computed data in *queries*;
//! durability re-draws it, because closures have no byte representation.
//! Encoding a computed attribute, a computed/hybrid relation body, a λ
//! function, or a predicate-refined domain fails with the typed
//! [`DurabilityError::Unserializable`] — raised *before* a commit
//! installs, so such writes fail cleanly rather than half-commit.
//!
//! ## Shared-domain identity
//!
//! Foreign-key links in FDM are *pointer identity* of [`SharedDomain`]s.
//! The codec preserves the sharing topology by interning: the first
//! occurrence of a domain writes a definition, later occurrences write a
//! back-reference, and decoding rebuilds one `SharedDomain` per
//! definition. Identity is thus preserved *within* one encoded value
//! (checkpoint or record) but not *across* separately decoded values —
//! recovery re-links relationship participants against the recovered
//! database's own domains.

use crate::error::{DurabilityError, Result};
use fdm_core::{
    Constraint, DatabaseF, Domain, FnValue, Name, Participant, RelationF, RelationshipF,
    SharedDomain, TupleF, Value, ValueType,
};
use std::sync::Arc;

/// One logged operation of a committed writeset — the durable mirror of
/// the transaction layer's op list. `fdm-txn` converts its own ops to and
/// from this type 1:1; keeping a separate type here avoids a dependency
/// cycle (txn depends on durability, not the other way around).
#[derive(Clone, Debug)]
pub enum WalOp {
    /// Insert or replace one tuple under `key` in relation `rel`.
    Upsert {
        /// Target relation function.
        rel: Name,
        /// Primary key value.
        key: Value,
        /// The new tuple.
        tuple: Arc<TupleF>,
    },
    /// Delete the tuple under `key` from relation `rel`.
    Delete {
        /// Target relation function.
        rel: Name,
        /// Primary key value.
        key: Value,
    },
    /// Assign a whole database entry (relation, tuple, nested database…).
    Assign {
        /// Entry name.
        name: Name,
        /// The assigned function value.
        value: FnValue,
    },
    /// Drop a whole database entry.
    Drop {
        /// Entry name.
        name: Name,
    },
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
/// guarding every WAL record and checkpoint payload. Implemented locally
/// because the build environment vendors no external crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes a committed writeset for a WAL record payload.
pub fn encode_ops(ops: &[WalOp]) -> Result<Vec<u8>> {
    let mut e = Encoder::new();
    e.u32(ops.len() as u32);
    for op in ops {
        e.wal_op(op)?;
    }
    Ok(e.buf)
}

/// Decodes a WAL record payload back into its writeset.
pub fn decode_ops(bytes: &[u8]) -> Result<Vec<WalOp>> {
    let mut d = Decoder::new(bytes);
    let n = d.count()?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(d.wal_op()?);
    }
    d.finish()?;
    Ok(ops)
}

/// Encodes a whole database function for a checkpoint payload.
pub fn encode_database(db: &DatabaseF) -> Result<Vec<u8>> {
    let mut e = Encoder::new();
    e.database(db)?;
    Ok(e.buf)
}

/// Decodes a checkpoint payload back into a database function.
pub fn decode_database(bytes: &[u8]) -> Result<DatabaseF> {
    let mut d = Decoder::new(bytes);
    let db = d.database()?;
    d.finish()?;
    Ok(db)
}

// ---------------------------------------------------------------- encoder

struct Encoder {
    buf: Vec<u8>,
    /// Interned shared domains, in definition order (identity = `same_as`).
    domains: Vec<SharedDomain>,
}

impl Encoder {
    fn new() -> Encoder {
        Encoder {
            buf: Vec::new(),
            domains: Vec::new(),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn value(&mut self, v: &Value) -> Result<()> {
        match v {
            Value::Unit => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(x) => {
                self.u8(3);
                self.u64(x.to_bits());
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::List(items) => {
                self.u8(5);
                self.u32(items.len() as u32);
                for item in items.iter() {
                    self.value(item)?;
                }
            }
            Value::Fn(f) => {
                self.u8(6);
                self.fn_value(f)?;
            }
        }
        Ok(())
    }

    fn fn_value(&mut self, f: &FnValue) -> Result<()> {
        match f {
            FnValue::Tuple(t) => {
                self.u8(0);
                self.tuple(t)
            }
            FnValue::Relation(r) => {
                self.u8(1);
                self.relation(r)
            }
            FnValue::Relationship(r) => {
                self.u8(2);
                self.relationship(r)
            }
            FnValue::Database(db) => {
                self.u8(3);
                self.database(db)
            }
            FnValue::Lambda(_) => Err(DurabilityError::Unserializable {
                what: "λ function (closures have no byte representation)".into(),
            }),
        }
    }

    /// Canonical tuple encoding: attributes sorted by name.
    fn tuple(&mut self, t: &TupleF) -> Result<()> {
        let mut names: Vec<&Name> = t.attr_names().collect();
        names.sort();
        self.str(t.name());
        self.u32(names.len() as u32);
        for n in names {
            if t.is_computed(n) {
                return Err(DurabilityError::Unserializable {
                    what: format!("computed attribute '{n}' of tuple function '{}'", t.name()),
                });
            }
            let v = t.get(n).map_err(|e| DurabilityError::Corrupt {
                detail: format!("attribute '{n}' unreadable: {e}"),
            })?;
            self.str(n);
            self.value(&v)?;
        }
        Ok(())
    }

    fn constraint(&mut self, c: &Constraint) -> Result<()> {
        match c {
            Constraint::Unique(attrs) => {
                self.u8(0);
                self.u32(attrs.len() as u32);
                for a in attrs {
                    self.str(a);
                }
                Ok(())
            }
            Constraint::AttrDomain { attr, domain } => {
                self.u8(1);
                self.str(attr);
                self.domain(domain)
            }
        }
    }

    fn value_type(&mut self, t: ValueType) {
        self.u8(match t {
            ValueType::Unit => 0,
            ValueType::Bool => 1,
            ValueType::Int => 2,
            ValueType::Float => 3,
            ValueType::Str => 4,
            ValueType::List => 5,
            ValueType::Function => 6,
        });
    }

    fn domain(&mut self, d: &Domain) -> Result<()> {
        match d {
            Domain::Typed(t) => {
                self.u8(0);
                self.value_type(*t);
                Ok(())
            }
            Domain::Enumerated(set) => {
                self.u8(1);
                self.u32(set.len() as u32);
                for v in set.iter() {
                    self.value(v)?;
                }
                Ok(())
            }
            Domain::IntRange(lo, hi) => {
                self.u8(2);
                self.i64(*lo);
                self.i64(*hi);
                Ok(())
            }
            Domain::FloatRange(lo, hi) => {
                self.u8(3);
                self.u64(lo.to_bits());
                self.u64(hi.to_bits());
                Ok(())
            }
            Domain::Predicate { description, .. } => Err(DurabilityError::Unserializable {
                what: format!("predicate domain '{description}'"),
            }),
            Domain::Product(ds) => {
                self.u8(4);
                self.u32(ds.len() as u32);
                for d in ds {
                    self.domain(d)?;
                }
                Ok(())
            }
        }
    }

    /// Interned shared-domain encoding: first occurrence defines, later
    /// occurrences back-reference, preserving the FK sharing topology.
    fn shared_domain(&mut self, d: &SharedDomain) -> Result<()> {
        if let Some(idx) = self.domains.iter().position(|seen| seen.same_as(d)) {
            self.u8(1);
            self.u32(idx as u32);
            return Ok(());
        }
        self.u8(0);
        self.str(d.name());
        self.domain(d.domain())?;
        self.domains.push(d.clone());
        Ok(())
    }

    fn relation(&mut self, r: &RelationF) -> Result<()> {
        if !r.is_plain_stored() && !r.is_multi() {
            return Err(DurabilityError::Unserializable {
                what: format!("computed relation function '{}'", r.name()),
            });
        }
        self.str(r.name());
        self.u32(r.key_attrs().len() as u32);
        for k in r.key_attrs() {
            self.str(k);
        }
        self.u32(r.constraints().len() as u32);
        for c in r.constraints() {
            self.constraint(c)?;
        }
        if r.is_multi() {
            self.u8(1);
            let groups: Vec<_> = r.iter_groups().collect();
            self.u32(groups.len() as u32);
            for (key, group) in groups {
                self.value(&key)?;
                self.u32(group.len() as u32);
                for t in group.iter() {
                    self.tuple(t)?;
                }
            }
        } else {
            self.u8(0);
            let entries: Vec<_> = r.iter_stored().collect();
            self.u32(entries.len() as u32);
            for (key, t) in entries {
                self.value(&key)?;
                self.tuple(&t)?;
            }
        }
        Ok(())
    }

    fn relationship(&mut self, r: &RelationshipF) -> Result<()> {
        self.str(r.name());
        self.u32(r.participants().len() as u32);
        for p in r.participants() {
            self.str(&p.function);
            self.str(&p.key);
            self.shared_domain(&p.domain)?;
        }
        let entries: Vec<_> = r.iter_entries().collect();
        self.u32(entries.len() as u32);
        for (args, t) in entries {
            self.u32(args.len() as u32);
            for a in args {
                self.value(a)?;
            }
            self.tuple(t)?;
        }
        Ok(())
    }

    fn database(&mut self, db: &DatabaseF) -> Result<()> {
        self.str(db.name());
        let domains: Vec<_> = db.shared_domains().collect();
        self.u32(domains.len() as u32);
        for (_, d) in domains {
            self.shared_domain(d)?;
        }
        let entries: Vec<_> = db.iter().collect();
        self.u32(entries.len() as u32);
        for (name, f) in entries {
            self.str(name);
            self.fn_value(f)?;
        }
        Ok(())
    }

    fn wal_op(&mut self, op: &WalOp) -> Result<()> {
        match op {
            WalOp::Upsert { rel, key, tuple } => {
                self.u8(0);
                self.str(rel);
                self.value(key)?;
                self.tuple(tuple)
            }
            WalOp::Delete { rel, key } => {
                self.u8(1);
                self.str(rel);
                self.value(key)
            }
            WalOp::Assign { name, value } => {
                self.u8(2);
                self.str(name);
                self.fn_value(value)
            }
            WalOp::Drop { name } => {
                self.u8(3);
                self.str(name);
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------- decoder

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Shared domains decoded so far, indexed by definition order.
    domains: Vec<SharedDomain>,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder {
            buf,
            pos: 0,
            domains: Vec::new(),
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> DurabilityError {
        DurabilityError::Corrupt {
            detail: format!("{} (at payload byte {})", detail.into(), self.pos),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "payload overrun: wanted {n} bytes, {} remain",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// An element count, sanity-checked against the remaining bytes (every
    /// element costs at least one byte) so a corrupt length cannot force a
    /// huge allocation.
    fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(self.corrupt(format!("implausible element count {n}")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("invalid UTF-8 in string"))
    }

    fn name(&mut self) -> Result<Name> {
        Ok(Name::from(self.str()?))
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Unit,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(Arc::from(self.str()?)),
            5 => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Value::list(items)
            }
            6 => Value::Fn(self.fn_value()?),
            t => return Err(self.corrupt(format!("unknown value tag {t}"))),
        })
    }

    fn fn_value(&mut self) -> Result<FnValue> {
        Ok(match self.u8()? {
            0 => FnValue::Tuple(Arc::new(self.tuple()?)),
            1 => FnValue::Relation(Arc::new(self.relation()?)),
            2 => FnValue::Relationship(Arc::new(self.relationship()?)),
            3 => FnValue::Database(Arc::new(self.database()?)),
            t => return Err(self.corrupt(format!("unknown function tag {t}"))),
        })
    }

    fn tuple(&mut self) -> Result<TupleF> {
        let name = self.name()?;
        let n = self.count()?;
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = self.name()?;
            let v = self.value()?;
            parts.push((attr, v));
        }
        Ok(TupleF::from_parts(name, parts))
    }

    fn constraint(&mut self) -> Result<Constraint> {
        Ok(match self.u8()? {
            0 => {
                let n = self.count()?;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    attrs.push(self.name()?);
                }
                Constraint::Unique(attrs)
            }
            1 => {
                let attr = self.name()?;
                let domain = self.domain()?;
                Constraint::AttrDomain { attr, domain }
            }
            t => return Err(self.corrupt(format!("unknown constraint tag {t}"))),
        })
    }

    fn value_type(&mut self) -> Result<ValueType> {
        Ok(match self.u8()? {
            0 => ValueType::Unit,
            1 => ValueType::Bool,
            2 => ValueType::Int,
            3 => ValueType::Float,
            4 => ValueType::Str,
            5 => ValueType::List,
            6 => ValueType::Function,
            t => return Err(self.corrupt(format!("unknown value-type tag {t}"))),
        })
    }

    fn domain(&mut self) -> Result<Domain> {
        Ok(match self.u8()? {
            0 => Domain::Typed(self.value_type()?),
            1 => {
                let n = self.count()?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.value()?);
                }
                Domain::enumerated(values)
            }
            2 => Domain::IntRange(self.i64()?, self.i64()?),
            3 => Domain::FloatRange(f64::from_bits(self.u64()?), f64::from_bits(self.u64()?)),
            4 => {
                let n = self.count()?;
                let mut ds = Vec::with_capacity(n);
                for _ in 0..n {
                    ds.push(self.domain()?);
                }
                Domain::Product(ds)
            }
            t => return Err(self.corrupt(format!("unknown domain tag {t}"))),
        })
    }

    fn shared_domain(&mut self) -> Result<SharedDomain> {
        match self.u8()? {
            0 => {
                let name = self.str()?.to_string();
                let domain = self.domain()?;
                let d = SharedDomain::new(name, domain);
                self.domains.push(d.clone());
                Ok(d)
            }
            1 => {
                let idx = self.u32()? as usize;
                self.domains.get(idx).cloned().ok_or_else(|| {
                    self.corrupt(format!("shared-domain back-reference {idx} out of range"))
                })
            }
            t => Err(self.corrupt(format!("unknown shared-domain tag {t}"))),
        }
    }

    fn relation(&mut self) -> Result<RelationF> {
        let name = self.name()?;
        let nk = self.count()?;
        let mut key_attrs = Vec::with_capacity(nk);
        for _ in 0..nk {
            key_attrs.push(self.name()?);
        }
        let nc = self.count()?;
        let mut constraints = Vec::with_capacity(nc);
        for _ in 0..nc {
            constraints.push(self.constraint()?);
        }
        let key_strs: Vec<&str> = key_attrs.iter().map(|n| n.as_ref()).collect();
        let body = self.u8()?;
        let mut rel = match body {
            0 => {
                let n = self.count()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.value()?;
                    let t = Arc::new(self.tuple()?);
                    entries.push((key, t));
                }
                RelationF::from_sorted(&name, &key_strs, entries)
            }
            1 => {
                let n = self.count()?;
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.value()?;
                    let g = self.count()?;
                    let mut tuples = Vec::with_capacity(g);
                    for _ in 0..g {
                        tuples.push(Arc::new(self.tuple()?));
                    }
                    groups.push((key, tuples));
                }
                RelationF::from_groups(&name, &key_strs, groups)
            }
            t => return Err(self.corrupt(format!("unknown relation body tag {t}"))),
        };
        for c in constraints {
            rel = rel.with_constraint(c)?;
        }
        Ok(rel)
    }

    fn relationship(&mut self) -> Result<RelationshipF> {
        let name = self.name()?;
        let np = self.count()?;
        let mut participants = Vec::with_capacity(np);
        for _ in 0..np {
            let function = self.name()?;
            let key = self.name()?;
            let domain = self.shared_domain()?;
            participants.push(Participant {
                function,
                key,
                domain,
            });
        }
        let n = self.count()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let arity = self.count()?;
            let mut args = Vec::with_capacity(arity);
            for _ in 0..arity {
                args.push(self.value()?);
            }
            let t = Arc::new(self.tuple()?);
            entries.push((args, t));
        }
        Ok(RelationshipF::from_sorted(&name, participants, entries)?)
    }

    fn database(&mut self) -> Result<DatabaseF> {
        let name = self.str()?.to_string();
        let mut db = DatabaseF::new(name);
        let nd = self.count()?;
        for _ in 0..nd {
            let d = self.shared_domain()?;
            db = db.with_domain(d);
        }
        let ne = self.count()?;
        for _ in 0..ne {
            let entry_name = self.name()?;
            let f = self.fn_value()?;
            db = db.with_entry(entry_name, f);
        }
        Ok(db)
    }

    fn wal_op(&mut self) -> Result<WalOp> {
        Ok(match self.u8()? {
            0 => {
                let rel = self.name()?;
                let key = self.value()?;
                let tuple = Arc::new(self.tuple()?);
                WalOp::Upsert { rel, key, tuple }
            }
            1 => {
                let rel = self.name()?;
                let key = self.value()?;
                WalOp::Delete { rel, key }
            }
            2 => {
                let name = self.name()?;
                let value = self.fn_value()?;
                WalOp::Assign { name, value }
            }
            3 => WalOp::Drop { name: self.name()? },
            t => return Err(self.corrupt(format!("unknown op tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> DatabaseF {
        let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
        let pid = SharedDomain::new("pid", Domain::enumerated([Value::Int(10), Value::Int(20)]));
        let customers = RelationF::new("customers", &["cid"])
            .insert(
                Value::Int(1),
                TupleF::builder("c")
                    .attr("name", "Ann")
                    .attr("age", 34)
                    .build(),
            )
            .unwrap()
            .insert(
                Value::Int(2),
                TupleF::builder("c")
                    .attr("name", "Bob")
                    .attr("score", 1.5)
                    .build(),
            )
            .unwrap()
            .with_constraint(Constraint::unique(&["name"]))
            .unwrap();
        let orders = RelationshipF::from_sorted(
            "orders",
            vec![
                Participant {
                    function: Name::from("customers"),
                    key: Name::from("cid"),
                    domain: cid.clone(),
                },
                Participant {
                    function: Name::from("products"),
                    key: Name::from("pid"),
                    domain: pid.clone(),
                },
            ],
            vec![(
                vec![Value::Int(1), Value::Int(10)],
                Arc::new(TupleF::builder("o").attr("qty", 3).build()),
            )],
        )
        .unwrap();
        DatabaseF::new("shop")
            .with_domain(cid)
            .with_domain(pid)
            .with_relation(customers)
            .with_entry("orders", FnValue::Relationship(Arc::new(orders)))
            .with_entry(
                "motd",
                FnValue::Tuple(Arc::new(
                    TupleF::builder("motd").attr("text", "hello").build(),
                )),
            )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn database_roundtrips_byte_stably() {
        let db = sample_db();
        let bytes = encode_database(&db).unwrap();
        let back = decode_database(&bytes).unwrap();
        // canonical: re-encoding the decoded value is byte-identical
        let bytes2 = encode_database(&back).unwrap();
        assert_eq!(bytes, bytes2, "codec is canonical");
        // structure survives
        assert_eq!(back.name(), "shop");
        let c = back.relation("customers").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.lookup(&Value::Int(1)).unwrap().get("name").unwrap(),
            Value::str("Ann")
        );
        assert_eq!(c.constraints().len(), 1);
        // the secondary unique index was rebuilt: a duplicate insert fails
        assert!(c
            .insert(
                Value::Int(3),
                TupleF::builder("c").attr("name", "Ann").build()
            )
            .is_err());
        let o = back.relationship("orders").unwrap();
        assert_eq!(o.len(), 1);
        assert_eq!(o.participants().len(), 2);
    }

    #[test]
    fn shared_domain_identity_survives_one_roundtrip() {
        let db = sample_db();
        let back = decode_database(&encode_database(&db).unwrap()).unwrap();
        // the relationship participant's 'cid' domain IS the db-registered one
        let reg = back.shared_domain("cid").unwrap();
        let orders = back.relationship("orders").unwrap();
        let part = &orders.participants()[0];
        assert!(
            reg.same_as(&part.domain),
            "FK sharing topology preserved within one decoded value"
        );
    }

    #[test]
    fn multi_relation_roundtrips() {
        let r = RelationF::from_groups(
            "by_age",
            &["age"],
            vec![(
                Value::Int(30),
                vec![
                    Arc::new(TupleF::builder("c").attr("name", "Ann").build()),
                    Arc::new(TupleF::builder("c").attr("name", "Bob").build()),
                ],
            )],
        );
        assert!(r.is_multi());
        let db = DatabaseF::new("d").with_relation(r);
        let back = decode_database(&encode_database(&db).unwrap()).unwrap();
        let r2 = back.relation("by_age").unwrap();
        assert!(r2.is_multi());
        assert_eq!(r2.lookup_all(&Value::Int(30)).len(), 2);
    }

    #[test]
    fn ops_roundtrip() {
        let ops = vec![
            WalOp::Upsert {
                rel: Name::from("customers"),
                key: Value::Int(7),
                tuple: Arc::new(TupleF::builder("c").attr("name", "Eve").build()),
            },
            WalOp::Delete {
                rel: Name::from("customers"),
                key: Value::Int(1),
            },
            WalOp::Assign {
                name: Name::from("flag"),
                value: FnValue::Tuple(Arc::new(TupleF::builder("f").attr("on", true).build())),
            },
            WalOp::Drop {
                name: Name::from("old"),
            },
        ];
        let bytes = encode_ops(&ops).unwrap();
        let back = decode_ops(&bytes).unwrap();
        assert_eq!(back.len(), 4);
        assert!(matches!(&back[0], WalOp::Upsert { rel, key, tuple }
            if rel.as_ref() == "customers" && *key == Value::Int(7)
                && tuple.get("name").unwrap() == Value::str("Eve")));
        assert!(matches!(&back[3], WalOp::Drop { name } if name.as_ref() == "old"));
        // canonical
        assert_eq!(bytes, encode_ops(&back).unwrap());
    }

    #[test]
    fn unserializable_values_fail_with_typed_errors() {
        // computed attribute
        let t = TupleF::builder("t")
            .attr("foo", 2)
            .computed("bar", |t| t.get("foo"))
            .build();
        let db = DatabaseF::new("d").with_entry("t", FnValue::Tuple(Arc::new(t)));
        let err = encode_database(&db).unwrap_err();
        assert!(
            matches!(&err, DurabilityError::Unserializable { what } if what.contains("bar")),
            "{err}"
        );
        // computed relation
        let r = RelationF::computed("squares", &["n"], Domain::IntRange(1, 4), |k| {
            let n = k.as_int("n")?;
            Ok(Value::Fn(FnValue::from(
                TupleF::builder("sq").attr("n", n).build(),
            )))
        });
        let db = DatabaseF::new("d").with_relation(r);
        assert!(matches!(
            encode_database(&db).unwrap_err(),
            DurabilityError::Unserializable { .. }
        ));
        // predicate domain
        let d = Domain::IntRange(0, 9).refine("even", |v| matches!(v, Value::Int(i) if i % 2 == 0));
        let db = DatabaseF::new("d").with_domain(SharedDomain::new("evens", d));
        assert!(matches!(
            encode_database(&db).unwrap_err(),
            DurabilityError::Unserializable { what } if what.contains("even")
        ));
    }

    #[test]
    fn corrupt_payloads_fail_with_typed_errors() {
        let db = sample_db();
        let bytes = encode_database(&db).unwrap();
        // truncation → overrun
        let err = decode_database(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt { .. }), "{err}");
        // garbage from the first byte: a nonsense length prefix overruns.
        // (A bit flip *inside* a fixed-width scalar just decodes to a
        // different value — catching that is the record CRC's job, not
        // the codec's.)
        assert!(decode_database(&[0xFF, 0xFF, 0xFF, 0xFF, 0x01]).is_err());
        // trailing garbage
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_database(&padded).unwrap_err(),
            DurabilityError::Corrupt { .. }
        ));
    }

    #[test]
    fn nested_databases_roundtrip() {
        let inner = DatabaseF::new("inner").with_relation(
            RelationF::new("r", &["k"])
                .insert(Value::Int(1), TupleF::builder("t").attr("v", 1).build())
                .unwrap(),
        );
        let outer = DatabaseF::new("outer").with_entry("sub", FnValue::Database(Arc::new(inner)));
        let back = decode_database(&encode_database(&outer).unwrap()).unwrap();
        match back.entry("sub").unwrap() {
            FnValue::Database(d) => assert_eq!(d.relation("r").unwrap().len(), 1),
            other => panic!("expected nested database, got {other:?}"),
        }
    }

    #[test]
    fn float_values_roundtrip_by_bits() {
        let t = TupleF::builder("t")
            .attr("x", f64::NEG_INFINITY)
            .attr("y", -0.0)
            .attr("z", 1.0e-300)
            .build();
        let db = DatabaseF::new("d").with_entry("t", FnValue::Tuple(Arc::new(t)));
        let back = decode_database(&encode_database(&db).unwrap()).unwrap();
        let t = match back.entry("t").unwrap() {
            FnValue::Tuple(t) => t.clone(),
            _ => unreachable!(),
        };
        assert_eq!(t.get("x").unwrap(), Value::Float(f64::NEG_INFINITY));
        match t.get("y").unwrap() {
            Value::Float(y) => assert_eq!(y.to_bits(), (-0.0f64).to_bits()),
            _ => unreachable!(),
        }
    }
}
