//! ERM → FDM compilation (the right-hand side of the paper's Fig. 1).
//!
//! * each entity becomes a **relation function** keyed by its ER key,
//!   with attribute-domain constraints from the declared types;
//! * each entity key becomes a **shared domain**;
//! * each relationship becomes a **relationship function** whose
//!   parameters reuse the participants' shared domains — so foreign-key
//!   enforcement falls out of domain sharing (paper §3), no separate FK
//!   machinery exists.

use crate::schema::{Entity, ErSchema};
use fdm_core::{
    Constraint, DatabaseF, Domain, Participant, RelationF, RelationshipF, SharedDomain,
};

/// Compiles an ER schema into an (empty) FDM database function with the
/// derived relation functions, relationship functions, and shared
/// domains.
pub fn compile_to_fdm(schema: &ErSchema) -> DatabaseF {
    let mut db = DatabaseF::new(&schema.name);

    // one shared domain per entity key; the domain's name is
    // "<entity>.<key>" to keep multi-entity schemas unambiguous
    let mut domains: Vec<(String, SharedDomain)> = Vec::new();
    for e in &schema.entities {
        let d = SharedDomain::new(
            format!("{}.{}", e.name, e.key.name),
            Domain::Typed(e.key.ty),
        );
        db = db.with_domain(d.clone());
        domains.push((e.name.clone(), d));
    }

    for e in &schema.entities {
        db = db.with_relation(entity_relation(e));
    }

    for r in &schema.relationships {
        let participants: Vec<Participant> = r
            .ends
            .iter()
            .map(|end| {
                let (_, d) = domains
                    .iter()
                    .find(|(ename, _)| ename == &end.entity)
                    .expect("validated schema");
                let key_name = schema
                    .entity(&end.entity)
                    .expect("validated schema")
                    .key
                    .name
                    .clone();
                Participant::new(&end.entity, &key_name, d.clone())
            })
            .collect();
        db = db.with_relationship(RelationshipF::new(&r.name, participants));
    }
    db
}

fn entity_relation(e: &Entity) -> RelationF {
    let mut rel = RelationF::new(&e.name, &[e.key.name.as_str()]);
    for a in &e.attrs {
        rel = rel
            .with_constraint(Constraint::attr_domain(&a.name, Domain::Typed(a.ty)))
            .expect("empty relation accepts any constraint");
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::retail_schema;
    use fdm_core::{TupleF, Value};

    #[test]
    fn fig1_compiles_to_fdm() {
        let db = compile_to_fdm(&retail_schema());
        assert!(db.relation("customers").is_ok());
        assert!(db.relation("products").is_ok());
        let order = db.relationship("order").unwrap();
        assert_eq!(order.arity_k(), 2);
        assert_eq!(order.participants()[0].function.as_ref(), "customers");
        // shared domains registered
        assert!(db.shared_domain("customers.cid").is_some());
        assert!(db.shared_domain("products.pid").is_some());
        // the relationship's cid parameter IS the customers key domain
        assert!(order.participants()[0]
            .domain
            .same_as(db.shared_domain("customers.cid").unwrap()));
    }

    #[test]
    fn compiled_constraints_enforce_types() {
        let db = compile_to_fdm(&retail_schema());
        let customers = db.relation("customers").unwrap();
        let bad = TupleF::builder("c").attr("age", "not a number").build();
        assert!(customers.insert(Value::Int(1), bad).is_err());
        let good = TupleF::builder("c")
            .attr("name", "Alice")
            .attr("age", 43)
            .build();
        assert!(customers.insert(Value::Int(1), good).is_ok());
    }

    #[test]
    fn compiled_relationship_accepts_links() {
        let db = compile_to_fdm(&retail_schema());
        let order = db.relationship("order").unwrap();
        let order2 = order
            .insert(
                &[Value::Int(1), Value::Int(7)],
                TupleF::builder("o").attr("date", "2026-06-01").build(),
            )
            .unwrap();
        assert!(order2.relates(&[Value::Int(1), Value::Int(7)]));
        // wrong type rejected by the shared domain
        assert!(order2
            .insert_link(&[Value::str("x"), Value::Int(7)])
            .is_err());
    }
}
