//! ERM → relational compilation (the classical path the paper's Fig. 1
//! contrasts with): entities become tables; N:M relationships become
//! junction tables carrying both foreign keys; 1:N relationships become a
//! foreign-key column on the many side.

use crate::schema::{Cardinality, ErSchema};
use fdm_relational::{Relation, Schema};

/// The relational schema produced from an ER schema: a set of empty
/// relations plus the foreign-key metadata (which the relational engine
/// cannot itself enforce — the usual afterthought the paper criticizes).
#[derive(Debug, Clone)]
pub struct RelationalTarget {
    /// The tables, empty, in declaration order.
    pub tables: Vec<Relation>,
    /// Foreign keys: `(from_table, from_col, to_table, to_col)`.
    pub foreign_keys: Vec<(String, String, String, String)>,
}

impl RelationalTarget {
    /// Finds a table by name.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.iter().find(|t| t.name() == name)
    }
}

/// Compiles an ER schema into relational tables.
///
/// * entity → table `(key, attrs...)`;
/// * N:M (or k-ary, or attributed) relationship → junction table
///   `(end1_key, end2_key, ..., attrs...)` with one FK per end;
/// * binary 1:N relationship without own attributes → FK column
///   `"<rel>_<one-side-key>"` added to the many side (the classic
///   physical-design shortcut);
/// * 1:1 without attributes → FK on the first side.
pub fn compile_to_relational(schema: &ErSchema) -> RelationalTarget {
    let mut extra_cols: Vec<(String, String)> = Vec::new(); // (table, col)
    let mut fks: Vec<(String, String, String, String)> = Vec::new();
    let mut junctions: Vec<Relation> = Vec::new();

    for r in &schema.relationships {
        let binary_no_attrs = r.ends.len() == 2 && r.attrs.is_empty();
        let one_side = r
            .ends
            .iter()
            .position(|e| e.cardinality == Cardinality::One);
        match (binary_no_attrs, one_side) {
            (true, Some(one_idx)) => {
                // 1:N (or 1:1): FK on the other (many/first) side
                let many_idx = 1 - one_idx;
                let many = &r.ends[many_idx].entity;
                let one = &r.ends[one_idx].entity;
                let one_key = &schema.entity(one).expect("validated").key.name;
                let col = format!("{}_{}", r.name, one_key);
                extra_cols.push((many.clone(), col.clone()));
                fks.push((many.clone(), col, one.clone(), one_key.clone()));
            }
            _ => {
                // junction table
                let mut cols: Vec<String> = Vec::new();
                for end in &r.ends {
                    let key = &schema.entity(&end.entity).expect("validated").key.name;
                    let col = format!("{}_{}", end.entity, key);
                    fks.push((r.name.clone(), col.clone(), end.entity.clone(), key.clone()));
                    cols.push(col);
                }
                for a in &r.attrs {
                    cols.push(a.name.clone());
                }
                let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                junctions.push(Relation::new(&r.name, Schema::new(&col_refs)));
            }
        }
    }

    let mut tables = Vec::new();
    for e in &schema.entities {
        let mut cols: Vec<String> = vec![e.key.name.clone()];
        cols.extend(e.attrs.iter().map(|a| a.name.clone()));
        for (t, c) in &extra_cols {
            if t == &e.name {
                cols.push(c.clone());
            }
        }
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        tables.push(Relation::new(&e.name, Schema::new(&col_refs)));
    }
    tables.extend(junctions);

    RelationalTarget {
        tables,
        foreign_keys: fks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{retail_schema, Cardinality, ErAttr, ErSchema};
    use fdm_core::ValueType;

    #[test]
    fn fig1_nm_relationship_becomes_junction_table() {
        let t = compile_to_relational(&retail_schema());
        let order = t.table("order").expect("junction table exists");
        let cols: Vec<&str> = order.schema().cols().iter().map(|c| c.as_ref()).collect();
        assert_eq!(cols, vec!["customers_cid", "products_pid", "name", "date"]);
        assert_eq!(t.foreign_keys.len(), 2);
        assert!(t.foreign_keys.contains(&(
            "order".into(),
            "customers_cid".into(),
            "customers".into(),
            "cid".into()
        )));
    }

    #[test]
    fn one_to_many_becomes_fk_column() {
        let s = ErSchema::builder("s")
            .entity("department", ErAttr::new("did", ValueType::Int), &[])
            .entity("employee", ErAttr::new("eid", ValueType::Int), &[])
            .relationship(
                "works_in",
                &[
                    ("employee", Cardinality::Many),
                    ("department", Cardinality::One),
                ],
                &[],
            )
            .build()
            .unwrap();
        let t = compile_to_relational(&s);
        assert!(t.table("works_in").is_none(), "no junction for 1:N");
        let emp = t.table("employee").unwrap();
        let cols: Vec<&str> = emp.schema().cols().iter().map(|c| c.as_ref()).collect();
        assert!(cols.contains(&"works_in_did"), "{cols:?}");
        assert_eq!(t.foreign_keys.len(), 1);
    }

    #[test]
    fn attributed_one_to_many_still_needs_junction() {
        // a 1:N with its own attributes cannot live as a bare FK column
        let s = ErSchema::builder("s")
            .entity("department", ErAttr::new("did", ValueType::Int), &[])
            .entity("employee", ErAttr::new("eid", ValueType::Int), &[])
            .relationship(
                "works_in",
                &[
                    ("employee", Cardinality::Many),
                    ("department", Cardinality::One),
                ],
                &[ErAttr::new("since", ValueType::Str)],
            )
            .build()
            .unwrap();
        let t = compile_to_relational(&s);
        assert!(t.table("works_in").is_some());
    }

    #[test]
    fn ternary_relationship_becomes_wide_junction() {
        let s = ErSchema::builder("s")
            .entity("a", ErAttr::new("aid", ValueType::Int), &[])
            .entity("b", ErAttr::new("bid", ValueType::Int), &[])
            .entity("c", ErAttr::new("cid", ValueType::Int), &[])
            .relationship(
                "t",
                &[
                    ("a", Cardinality::Many),
                    ("b", Cardinality::Many),
                    ("c", Cardinality::Many),
                ],
                &[],
            )
            .build()
            .unwrap();
        let t = compile_to_relational(&s);
        assert_eq!(t.table("t").unwrap().schema().width(), 3);
        assert_eq!(t.foreign_keys.len(), 3);
    }
}
