//! # fdm-erm — entity-relationship schemas, compiled two ways
//!
//! The paper's Fig. 1 shows the same retail schema as a traditional ER
//! diagram (compiled, classically, to relations + foreign keys) and as an
//! FDM (relation functions + a relationship function over shared
//! domains). This crate holds the ER schema ADT and both compilers, so
//! the `fig1` benchmark and the examples can run the *same* declared
//! schema against both worlds.
//!
//! ```
//! use fdm_erm::{compile_to_fdm, compile_to_relational, retail_schema};
//!
//! let schema = retail_schema();
//! let fdm_db = compile_to_fdm(&schema);
//! assert!(fdm_db.relationship("order").is_ok());
//!
//! let rel = compile_to_relational(&schema);
//! assert!(rel.table("order").is_some(), "N:M becomes a junction table");
//! ```

#![warn(missing_docs)]

pub mod schema;
pub mod to_fdm;
pub mod to_relational;

pub use schema::{
    retail_schema, Cardinality, Entity, ErAttr, ErError, ErRelationship, ErSchema, RelEnd,
};
pub use to_fdm::compile_to_fdm;
pub use to_relational::{compile_to_relational, RelationalTarget};
