//! Entity-relationship schemas (paper Fig. 1, and the CIDR'25 idea the
//! paper builds on: keep the ER abstraction as the DDL interface and
//! derive lower-level models from it instead of hand-coding them).

use fdm_core::ValueType;
use std::fmt;

/// A typed attribute of an entity or relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErAttr {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: ValueType,
}

impl ErAttr {
    /// Creates an attribute.
    pub fn new(name: &str, ty: ValueType) -> Self {
        ErAttr {
            name: name.to_string(),
            ty,
        }
    }
}

/// An entity set: a name, a key attribute, and non-key attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Entity set name (`"customers"`).
    pub name: String,
    /// The key attribute (`cid: int`).
    pub key: ErAttr,
    /// Non-key attributes.
    pub attrs: Vec<ErAttr>,
}

/// Cardinality of one end of a relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// At most one related instance.
    One,
    /// Any number of related instances.
    Many,
}

/// One end of a relationship: which entity, with which cardinality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelEnd {
    /// The participating entity's name.
    pub entity: String,
    /// Cardinality at this end.
    pub cardinality: Cardinality,
}

/// A relationship set among k entities, possibly with its own attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErRelationship {
    /// Relationship name (`"order"`).
    pub name: String,
    /// The ends (k ≥ 2).
    pub ends: Vec<RelEnd>,
    /// The relationship's own attributes (`date`).
    pub attrs: Vec<ErAttr>,
}

/// A complete ER schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErSchema {
    /// Schema name.
    pub name: String,
    /// Entity sets.
    pub entities: Vec<Entity>,
    /// Relationship sets.
    pub relationships: Vec<ErRelationship>,
}

/// A schema validation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErError(pub String);

impl fmt::Display for ErError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ER schema error: {}", self.0)
    }
}

impl std::error::Error for ErError {}

impl ErSchema {
    /// Starts building a schema.
    pub fn builder(name: &str) -> ErSchemaBuilder {
        ErSchemaBuilder {
            schema: ErSchema {
                name: name.to_string(),
                entities: Vec::new(),
                relationships: Vec::new(),
            },
        }
    }

    /// Finds an entity by name.
    pub fn entity(&self, name: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Finds a relationship by name.
    pub fn relationship(&self, name: &str) -> Option<&ErRelationship> {
        self.relationships.iter().find(|r| r.name == name)
    }

    /// Validates the schema: unique names, resolvable ends, arity ≥ 2,
    /// unique attribute names within each entity/relationship.
    pub fn validate(&self) -> Result<(), ErError> {
        let mut names = std::collections::BTreeSet::new();
        for e in &self.entities {
            if !names.insert(e.name.as_str()) {
                return Err(ErError(format!("duplicate entity '{}'", e.name)));
            }
            let mut attr_names = std::collections::BTreeSet::new();
            attr_names.insert(e.key.name.as_str());
            for a in &e.attrs {
                if !attr_names.insert(a.name.as_str()) {
                    return Err(ErError(format!(
                        "duplicate attribute '{}' in entity '{}'",
                        a.name, e.name
                    )));
                }
            }
        }
        for r in &self.relationships {
            if !names.insert(r.name.as_str()) {
                return Err(ErError(format!(
                    "relationship '{}' clashes with another name",
                    r.name
                )));
            }
            if r.ends.len() < 2 {
                return Err(ErError(format!(
                    "relationship '{}' needs at least two ends",
                    r.name
                )));
            }
            for end in &r.ends {
                if self.entity(&end.entity).is_none() {
                    return Err(ErError(format!(
                        "relationship '{}' references unknown entity '{}'",
                        r.name, end.entity
                    )));
                }
            }
            let mut attr_names = std::collections::BTreeSet::new();
            for a in &r.attrs {
                if !attr_names.insert(a.name.as_str()) {
                    return Err(ErError(format!(
                        "duplicate attribute '{}' in relationship '{}'",
                        a.name, r.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`ErSchema`].
pub struct ErSchemaBuilder {
    schema: ErSchema,
}

impl ErSchemaBuilder {
    /// Adds an entity with a key and attributes.
    pub fn entity(mut self, name: &str, key: ErAttr, attrs: &[ErAttr]) -> Self {
        self.schema.entities.push(Entity {
            name: name.to_string(),
            key,
            attrs: attrs.to_vec(),
        });
        self
    }

    /// Adds a relationship among entities.
    pub fn relationship(
        mut self,
        name: &str,
        ends: &[(&str, Cardinality)],
        attrs: &[ErAttr],
    ) -> Self {
        self.schema.relationships.push(ErRelationship {
            name: name.to_string(),
            ends: ends
                .iter()
                .map(|(e, c)| RelEnd {
                    entity: e.to_string(),
                    cardinality: *c,
                })
                .collect(),
            attrs: attrs.to_vec(),
        });
        self
    }

    /// Validates and returns the schema.
    pub fn build(self) -> Result<ErSchema, ErError> {
        self.schema.validate()?;
        Ok(self.schema)
    }
}

/// The paper's running example (Fig. 1): customers —(order)— products.
pub fn retail_schema() -> ErSchema {
    ErSchema::builder("shop")
        .entity(
            "customers",
            ErAttr::new("cid", ValueType::Int),
            &[
                ErAttr::new("name", ValueType::Str),
                ErAttr::new("age", ValueType::Int),
            ],
        )
        .entity(
            "products",
            ErAttr::new("pid", ValueType::Int),
            &[
                ErAttr::new("name", ValueType::Str),
                ErAttr::new("category", ValueType::Str),
            ],
        )
        .relationship(
            "order",
            &[
                ("customers", Cardinality::Many),
                ("products", Cardinality::Many),
            ],
            &[
                ErAttr::new("name", ValueType::Str),
                ErAttr::new("date", ValueType::Str),
            ],
        )
        .build()
        .expect("the paper's schema validates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_schema_builds() {
        let s = retail_schema();
        assert_eq!(s.entities.len(), 2);
        assert_eq!(s.relationships.len(), 1);
        assert_eq!(s.entity("customers").unwrap().key.name, "cid");
        assert_eq!(s.relationship("order").unwrap().ends.len(), 2);
    }

    #[test]
    fn validation_catches_duplicates_and_dangling_ends() {
        let dup = ErSchema::builder("s")
            .entity("a", ErAttr::new("id", ValueType::Int), &[])
            .entity("a", ErAttr::new("id", ValueType::Int), &[])
            .build();
        assert!(dup.is_err());

        let dangling = ErSchema::builder("s")
            .entity("a", ErAttr::new("id", ValueType::Int), &[])
            .relationship(
                "r",
                &[("a", Cardinality::One), ("ghost", Cardinality::Many)],
                &[],
            )
            .build();
        assert!(dangling.unwrap_err().to_string().contains("ghost"));

        let unary = ErSchema::builder("s")
            .entity("a", ErAttr::new("id", ValueType::Int), &[])
            .relationship("r", &[("a", Cardinality::One)], &[])
            .build();
        assert!(unary.is_err());

        let dup_attr = ErSchema::builder("s")
            .entity(
                "a",
                ErAttr::new("id", ValueType::Int),
                &[ErAttr::new("id", ValueType::Str)],
            )
            .build();
        assert!(dup_attr.is_err());
    }

    #[test]
    fn name_clash_between_entity_and_relationship() {
        let s = ErSchema::builder("s")
            .entity("a", ErAttr::new("id", ValueType::Int), &[])
            .entity("b", ErAttr::new("id", ValueType::Int), &[])
            .relationship(
                "a",
                &[("a", Cardinality::One), ("b", Cardinality::One)],
                &[],
            )
            .build();
        assert!(s.is_err());
    }
}
