//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, tuple/range/`any` strategies, `prop::collection::{vec,
//! btree_map, btree_set}`, the `proptest!`/`prop_oneof!` macros, and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; inputs are deterministic per test name,
//!   so every failure is reproducible by re-running the test.
//! * **Deterministic seeding.** The RNG is seeded from the test function's
//!   name, so runs are stable across invocations and machines.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test configuration and the deterministic RNG.

    /// Number-of-cases configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64-based RNG used for generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary u64.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seeds deterministically from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (type erasure).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy; used by `prop_oneof!` so inference flows through a
    /// fn generic instead of an `as` cast.
    pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from a non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// A constant strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

mod ranges {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};

    /// Integers generatable from ranges and `any`.
    pub trait GenInt: Copy {
        fn from_bits(bits: u64) -> Self;
        fn widen(self) -> i128;
        fn narrow(v: i128) -> Self;
    }

    macro_rules! gen_int {
        ($($t:ty),*) => {$(
            impl GenInt for $t {
                fn from_bits(bits: u64) -> Self { bits as $t }
                fn widen(self) -> i128 { self as i128 }
                fn narrow(v: i128) -> Self { v as $t }
            }
        )*};
    }
    gen_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: GenInt> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let lo = self.start.widen();
            let hi = self.end.widen();
            assert!(lo < hi, "empty range strategy");
            let span = (hi - lo) as u128;
            T::narrow(lo + (rng.next_u64() as u128 % span) as i128)
        }
    }

    impl<T: GenInt> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let lo = self.start().widen();
            let hi = self.end().widen();
            assert!(lo <= hi, "empty range strategy");
            let span = (hi - lo) as u128 + 1;
            T::narrow(lo + (rng.next_u64() as u128 % span) as i128)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range generation for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // finite, roughly centered values are the useful ones for tests
            ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) * 2e6 - 1e6
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_map`, `btree_set`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Range;
    use std::collections::{BTreeMap, BTreeSet};

    /// A size range `[lo, hi)` for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of `elem` values.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: SizeRange,
    }

    /// Generates sorted maps; key collisions may make the result smaller
    /// than the drawn size (upstream retries; tests here only compare
    /// against models built from the same entries, so this is fine).
    pub fn btree_map<K, V>(key: K, val: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            val,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.val.generate(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates sorted sets (size caveat as for [`btree_map`]).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub use crate as prop;
}

/// Runs each property with deterministic inputs; see crate docs for the
/// differences from upstream (no shrinking, name-seeded RNG).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // Each case runs in a closure so prop_assume! can skip
                    // the remainder with `return`.
                    (move || { $body })();
                }
            }
        )+
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_strategy($strat)),+
        ])
    };
}

/// Like `assert!` (no shrinking, so a plain panic is the failure report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0i64..100, y in -5i64..=5) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn collections_respect_size(v in prop::collection::vec(0u8..10, 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn oneof_and_map_work(op in prop_oneof![
            (0i64..10).prop_map(|x| x * 2),
            (0i64..10).prop_map(|x| x * 2 + 1),
        ]) {
            prop_assert!((0..20).contains(&op));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0i64..1000, 0..50);
        let a: Vec<_> = {
            let mut rng = TestRng::from_name("x");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::from_name("x");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
