//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the `fdm-bench` benches use:
//! `Criterion::benchmark_group`, group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), `bench_function` /
//! `bench_with_input` with `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a wall-clock warm-up loop followed by
//! `sample_size` samples, each timing a batch of iterations sized so the
//! samples fit the measurement window. The median, mean, and min per-iter
//! times are printed; when the `CRITERION_JSON` environment variable names
//! a file, one JSON line per benchmark is appended —
//! `{"group":…,"id":…,"median_ns":…,"mean_ns":…,"min_ns":…,"samples":…}` —
//! which is what `BENCH_*.json` artifacts are generated from.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named benchmark id, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` → `sort/1024`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id from a bare function name.
    pub fn from_name(name: impl Display) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// The final id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }

    /// A group-less benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, &mut f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run_one(&id, &mut |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run_one(&id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            mode: Mode::Warmup {
                until: Instant::now() + self.warm_up_time,
                iters_done: 0,
            },
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        // Warm-up pass: run until the clock expires, counting iterations to
        // calibrate the batch size for measurement.
        f(&mut b);
        let rate = match b.mode {
            Mode::Warmup { iters_done, .. } => {
                (iters_done as f64 / self.warm_up_time.as_secs_f64()).max(1.0)
            }
            _ => 1.0,
        };
        let total_iters = (rate * self.measurement_time.as_secs_f64()).max(1.0);
        let batch = (total_iters / self.sample_size as f64).ceil().max(1.0) as u64;
        b.mode = Mode::Measure { batch };
        b.samples_ns.clear();
        f(&mut b);

        let mut s = b.samples_ns;
        if s.is_empty() {
            return;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let min = s[0];
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        println!(
            "{full:<60} time: [median {} mean {} min {}] ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            s.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                    let _ = writeln!(
                        file,
                        "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{median},\"mean_ns\":{mean},\"min_ns\":{min},\"samples\":{}}}",
                        self.name,
                        id,
                        s.len()
                    );
                }
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    Warmup { until: Instant, iters_done: u64 },
    Measure { batch: u64 },
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match &mut self.mode {
            Mode::Warmup { until, iters_done } => {
                let until = *until;
                let mut n = 0u64;
                loop {
                    black_box(routine());
                    n += 1;
                    if Instant::now() >= until {
                        break;
                    }
                }
                *iters_done = n;
            }
            Mode::Measure { batch } => {
                let batch = *batch;
                let deadline = Instant::now() + self.measurement_time * 2;
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples_ns
                        .push(elapsed.as_nanos() as f64 / batch as f64);
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
