//! Offline vendored stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no registry access; this crate implements the
//! subset of `rand` the workspace uses — `Rng::random`, `Rng::random_range`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` — on top of a
//! deterministic xoshiro256++ generator seeded via splitmix64.
//!
//! Determinism guarantee: for a fixed seed, the value stream is stable
//! across runs and platforms (the workload generator and benches rely on
//! this; the exact stream differs from upstream `rand`, which is fine —
//! nothing in this repo encodes upstream's stream).

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64` is uniform in `[0, 1)`; integers are uniform over the full
    /// range; `bool` is a fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive); callers guarantee
    /// `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span as u128 + 1;
                // Modulo bias is < span / 2^64 — negligible for the sizes
                // used here, and determinism matters more than perfection.
                let r = (rng.next_u64() as u128 % span) as $u;
                ((lo as $u).wrapping_add(r)) as $t
            }
        }
    )*};
}
uniform_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
             i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_inclusive(self.start, self.end.dec(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Helper: decrement by one (to turn an exclusive bound inclusive).
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}
macro_rules! dec_int {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
}
dec_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// splitmix64 (not the upstream ChaCha-based StdRng, but API- and
    /// determinism-compatible for this workspace).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(0..60);
            assert!((0..60).contains(&x));
            let y: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let u: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
            let n = rng.random_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn full_coverage_of_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 12];
        for _ in 0..1000 {
            seen[rng.random_range(1..=12usize) - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
