//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! small slice of the `parking_lot` API this workspace uses, implemented on
//! top of `std::sync`. Semantics match `parking_lot` where it matters here:
//! `read`/`write`/`lock` never return poison errors (a poisoned std lock is
//! recovered by taking its inner value, which is `parking_lot`'s behavior —
//! it has no poisoning at all).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot` (non-poisoning) interface.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutual-exclusion lock with the `parking_lot` (non-poisoning) interface.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}
