//! The serving-equivalence differential layer: every fast path of the
//! PR 10 serving stack — group-committed write batches, the hot-tuple
//! cache, key-range sharded relation bodies — replayed against the naive
//! path on the same seeded Zipf stream, and required to be
//! **byte-identical at every committed version**, not just at the end.
//!
//! The replay protocol makes "every version" well-defined even though
//! the batched store installs one version per *group* while the naive
//! store installs one per *write*: both stores flush at the same stream
//! positions, so each served version `k` corresponds to a naive version
//! `n_k` (the number of writes in the first `k` groups), and
//! `served.as_of(k)` must equal `naive.as_of(n_k)` relation-for-relation,
//! key-for-key, data-key-for-data-key.
//!
//! Reads interleave with the replay: every point read goes through the
//! cache front and must return the exact tuple a fresh naive lookup
//! sees; every range scan is answered by both stores and compared
//! pairwise. The sharded test replays the stream's scans over a
//! `ShardedRelation` of the final state at several shard counts.
//!
//! The concurrent test runs `THREADS` client threads (CI pins 1 and 4 in
//! the `serve-stress` job) against one served store; write deltas
//! commute, so the final state must still equal a sequential naive
//! replay, and the audit sum must be non-decreasing along the whole
//! `as_of` chain.

use fdm_core::{DatabaseF, ShardMap, ShardedRelation, Value};
use fdm_tests::canonical_rows;
use fdm_txn::{BatchPolicy, StoreConfig};
use fdm_workload::{
    commit_serve_write, commit_serve_writes_batched, retail_store, retail_store_with, serve_ops,
    total_credit, writes_of, RetailConfig, ServeConfig, ServeOp,
};
use std::sync::Arc;

fn threads() -> usize {
    std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4)
}

/// The serving store's configuration: hot-tuple cache on, everything
/// else default. Small capacity on purpose — evictions and refills must
/// not affect what readers see.
fn serving_config() -> StoreConfig {
    StoreConfig {
        hot_cache: Some(256),
        ..StoreConfig::default()
    }
}

fn retail() -> RetailConfig {
    RetailConfig {
        customers: 300,
        ..RetailConfig::small()
    }
}

/// A whole database reduced to canonical content: every relation's
/// `(key, data-key)` rows, in relation-name order. Equal canonical
/// databases hold byte-identical data.
fn canonical_db(db: &DatabaseF) -> Vec<(String, Vec<(Value, Value)>)> {
    let mut rels: Vec<(String, Vec<(Value, Value)>)> = db
        .relations()
        .map(|(name, rel)| (name.as_ref().to_string(), canonical_rows(rel)))
        .collect();
    rels.sort_by(|a, b| a.0.cmp(&b.0));
    rels
}

fn mixed_stream(customers: usize, ops: usize, seed: u64, client: usize) -> Vec<ServeOp> {
    serve_ops(
        &ServeConfig {
            clients: 1,
            ops_per_client: ops,
            seed,
            skew: 1.1,
            read_pct: 50,
            scan_pct: 20,
            scan_len: 16,
        },
        customers,
        client,
    )
}

/// The deterministic differential: one client's mixed stream replayed
/// through the served stack (cache front, batched group commits) and the
/// naive path (per-request tree walks, one commit per write), flushing
/// at the same stream positions. Interleaved reads and scans must agree
/// op-by-op, and the two `as_of` chains must be byte-identical at every
/// group boundary — which is every committed version of the served
/// store.
#[test]
fn served_stack_matches_naive_at_every_committed_version() {
    let retail = retail();
    let customers = retail.customers;
    let served = retail_store_with(&retail, serving_config());
    let naive = retail_store(&retail);
    let policy = BatchPolicy::default();
    let group = 16usize;

    let ops = mixed_stream(customers, 600, 0x5E01, 0);
    let mut pending: Vec<(i64, i64)> = Vec::new();
    // (served version, naive version) at each group boundary
    let mut boundaries: Vec<(u64, u64)> = Vec::new();
    let flush = |pending: &mut Vec<(i64, i64)>, boundaries: &mut Vec<(u64, u64)>| {
        if pending.is_empty() {
            return;
        }
        commit_serve_writes_batched(&served, pending, group, &policy);
        for (c, d) in pending.iter() {
            commit_serve_write(&naive, *c, *d);
        }
        pending.clear();
        boundaries.push((served.version(), naive.version()));
    };

    for op in &ops {
        match op {
            ServeOp::Write { customer, delta } => {
                pending.push((*customer, *delta));
                if pending.len() == group {
                    flush(&mut pending, &mut boundaries);
                }
            }
            ServeOp::PointRead { customer } => {
                let key = Value::Int(*customer);
                let cached = served
                    .read_point("customers", &key)
                    .expect("customers relation exists")
                    .expect("generated cids are dense");
                let plain = naive
                    .snapshot()
                    .relation("customers")
                    .expect("customers relation exists")
                    .lookup(&key)
                    .expect("generated cids are dense");
                assert_eq!(
                    cached.data_key().expect("retail tuples carry no closures"),
                    plain.data_key().expect("retail tuples carry no closures"),
                    "cached point read diverged from the naive path for cid {customer}"
                );
            }
            ServeOp::RangeScan { start, len } => {
                let lo = Value::Int(*start);
                let hi = Value::Int(start + len - 1);
                let fast = served
                    .snapshot()
                    .relation("customers")
                    .expect("customers relation exists")
                    .range(Some(&lo), Some(&hi));
                let slow = naive
                    .snapshot()
                    .relation("customers")
                    .expect("customers relation exists")
                    .range(Some(&lo), Some(&hi));
                assert_eq!(
                    fast.len(),
                    slow.len(),
                    "scan [{start}, {}] cardinality",
                    start + len - 1
                );
                for ((fk, ft), (sk, st)) in fast.iter().zip(slow.iter()) {
                    assert_eq!(fk, sk, "scan key order diverged");
                    assert_eq!(
                        ft.data_key().expect("retail tuples carry no closures"),
                        st.data_key().expect("retail tuples carry no closures"),
                        "scan tuple diverged at key {fk:?}"
                    );
                }
            }
        }
    }
    flush(&mut pending, &mut boundaries);

    // the served store installed exactly one version per flushed group …
    assert_eq!(
        served.version(),
        boundaries.len() as u64,
        "group commit must install one version per group"
    );
    let writes = writes_of(&ops).len() as u64;
    assert_eq!(naive.version(), writes, "naive path: one version per write");
    assert!(
        served.version() < naive.version(),
        "batching must install fewer versions than one-at-a-time"
    );

    // … and the full as_of chains agree at every one of them
    assert_eq!(
        canonical_db(&served.snapshot()),
        canonical_db(&naive.snapshot())
    );
    for (k, &(sv, nv)) in boundaries.iter().enumerate() {
        assert_eq!(sv, k as u64 + 1, "served versions are the group sequence");
        let served_past = served.as_of(sv).expect("within history retention");
        let naive_past = naive.as_of(nv).expect("within history retention");
        assert_eq!(
            canonical_db(&served_past),
            canonical_db(&naive_past),
            "as_of diverged at group {sv} (naive version {nv})"
        );
    }
}

/// Sharded ≡ unsharded over the stream's own scans: the final served
/// state's `customers` relation is split at several shard counts and
/// must answer every range scan of the stream — plus scans pinned
/// exactly on the shard boundary keys — byte-identically to the
/// unsharded body.
#[test]
fn sharded_relation_answers_the_stream_scans_identically() {
    let retail = retail();
    let served = retail_store(&retail);
    let ops = mixed_stream(retail.customers, 400, 0x5E02, 1);
    commit_serve_writes_batched(&served, &writes_of(&ops), 16, &BatchPolicy::default());

    let db = served.snapshot();
    let rel = db.relation("customers").expect("customers relation exists");
    for shards in [1usize, 3, 8] {
        let map = ShardMap::for_relation(&rel, shards).expect("ascending stored keys");
        let sharded = ShardedRelation::from_relation(&rel, map.clone()).expect("clean split");
        assert_eq!(
            canonical_rows(&sharded.to_relation()),
            canonical_rows(&rel),
            "{shards}-way split must merge back byte-identical"
        );
        let mut scans: Vec<(Value, Value)> = ops
            .iter()
            .filter_map(|op| match op {
                ServeOp::RangeScan { start, len } => {
                    Some((Value::Int(*start), Value::Int(start + len - 1)))
                }
                _ => None,
            })
            .collect();
        // scans that start exactly on a boundary key, end exactly on
        // one, and straddle one by a single key on each side
        for b in map.boundaries() {
            if let Value::Int(b) = b {
                scans.push((Value::Int(*b), Value::Int(b + 5)));
                scans.push((Value::Int(b - 5), Value::Int(*b)));
                scans.push((Value::Int(b - 1), Value::Int(b + 1)));
            }
        }
        for (lo, hi) in &scans {
            let fast = sharded.range(Some(lo), Some(hi));
            let slow = rel.range(Some(lo), Some(hi));
            assert_eq!(fast.len(), slow.len(), "scan [{lo:?}, {hi:?}] cardinality");
            for ((fk, ft), (sk, st)) in fast.iter().zip(slow.iter()) {
                assert_eq!(fk, sk, "scan [{lo:?}, {hi:?}] key order");
                assert!(
                    Arc::ptr_eq(ft, st),
                    "sharded scan must serve the same tuple bodies"
                );
            }
        }
    }
}

/// `THREADS` concurrent clients hammer one served store through the
/// batched path; deltas commute, so the final database must equal a
/// sequential naive replay of all streams, and the audit sum must grow
/// monotonically along the served store's entire `as_of` chain.
#[test]
fn concurrent_clients_preserve_equivalence_and_audit_monotonicity() {
    let retail = retail();
    let clients = threads();
    let served = retail_store_with(&retail, serving_config());
    let policy = BatchPolicy::default();

    let streams: Vec<Vec<(i64, i64)>> = (0..clients)
        .map(|c| writes_of(&mixed_stream(retail.customers, 400, 0x5E03, c)))
        .collect();
    std::thread::scope(|s| {
        for stream in &streams {
            let served = Arc::clone(&served);
            let policy = policy.clone();
            s.spawn(move || {
                // interleaved reads keep the cache front hot and racing
                // with the other clients' invalidations
                for chunk in stream.chunks(16) {
                    commit_serve_writes_batched(&served, chunk, 16, &policy);
                    let key = Value::Int(chunk[0].0);
                    let got = served
                        .read_point("customers", &key)
                        .expect("customers relation exists");
                    assert!(got.is_some(), "generated cids are dense");
                }
            });
        }
    });

    let naive = retail_store(&retail);
    for stream in &streams {
        for (c, d) in stream {
            commit_serve_write(&naive, *c, *d);
        }
    }
    assert_eq!(
        canonical_db(&served.snapshot()),
        canonical_db(&naive.snapshot()),
        "commuting writes: concurrent batched replay must equal sequential naive replay"
    );

    let expected: i64 = streams.iter().flatten().map(|(_, d)| d).sum();
    let base = total_credit(&served.as_of(0).expect("birth version is retained"));
    let mut last = base;
    for v in 1..=served.version() {
        let at = total_credit(&served.as_of(v).expect("within history retention"));
        assert!(
            at > last,
            "every committed group adds positive credit (v{v}: {at} vs {last})"
        );
        last = at;
    }
    assert_eq!(
        last - base,
        expected,
        "no lost updates across concurrent clients"
    );
}
