//! Differential testing: the FDM/FQL engine against the from-scratch
//! relational engine on identical generated data. Where the two models
//! agree semantically (counts, group cardinalities, join sizes), their
//! answers must match exactly — on many random configurations.

use fdm_core::Value;
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_relational::{col_eq, group_by, hash_join, outer_join, select, Agg, Cell, OuterSide};
use fdm_workload::{generate, to_fdm, to_relational, RetailConfig};
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = RetailConfig> {
    (5usize..60, 2usize..25, 0usize..150, 0u8..3, any::<u64>()).prop_map(
        |(customers, products, orders, skew, seed)| RetailConfig {
            customers,
            products,
            orders,
            product_skew: skew as f64 * 0.7,
            inactive_customers: 0.25,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Filter: FQL filter_expr vs relational select agree on cardinality
    /// and on the selected key sets.
    #[test]
    fn filter_agrees(cfg in configs(), threshold in 18i64..80) {
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let rel = to_relational(&data);

        let fql = filter_expr(
            db.relation("customers").unwrap().as_ref(),
            "age > $t",
            Params::new().set("t", threshold),
        ).unwrap();
        let sql = select(&rel.customers, |s, r| {
            let i = s.index_of("age")?;
            r[i].sql_cmp(&Cell::Int(threshold)).map(|o| o == std::cmp::Ordering::Greater)
        });
        prop_assert_eq!(fql.len(), sql.len());

        let mut fql_keys: Vec<i64> = fql
            .stored_keys()
            .into_iter()
            .map(|k| k.as_int("cid").unwrap())
            .collect();
        fql_keys.sort_unstable();
        let mut sql_keys: Vec<i64> = sql
            .rows()
            .iter()
            .map(|r| match &r[0] { Cell::Int(i) => *i, _ => unreachable!() })
            .collect();
        sql_keys.sort_unstable();
        prop_assert_eq!(fql_keys, sql_keys);
    }

    /// Equality filter via the injection-proof parameter path vs SQL's
    /// col = lit.
    #[test]
    fn equality_filter_agrees(cfg in configs(), state_idx in 0usize..6) {
        let states = ["NY", "CA", "TX", "WA", "MA", "IL"];
        let state = states[state_idx];
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let rel = to_relational(&data);
        let fql = filter_expr(
            db.relation("customers").unwrap().as_ref(),
            "state == $s",
            Params::new().set("s", state),
        ).unwrap();
        let sql = select(&rel.customers, col_eq("state", Cell::str(state)));
        prop_assert_eq!(fql.len(), sql.len());
    }

    /// Join: the FDM schema-driven n-ary join and the relational
    /// two-step binary hash join produce the same number of denormalized
    /// rows (every order pairs one customer and one product).
    #[test]
    fn join_cardinality_agrees(cfg in configs()) {
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let rel = to_relational(&data);
        let fql = join(&db).unwrap();
        let sql = hash_join(
            &hash_join(&rel.orders, &rel.customers, "cid", "cid"),
            &rel.products,
            "pid",
            "pid",
        );
        prop_assert_eq!(fql.len(), sql.len());
        prop_assert_eq!(fql.len(), data.orders.len());
    }

    /// Group-by: group cardinalities and per-group counts agree.
    #[test]
    fn group_by_agrees(cfg in configs()) {
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let rel = to_relational(&data);
        let fql = group_and_aggregate(
            db.relation("customers").unwrap().as_ref(),
            &["state"],
            &[("count", AggSpec::Count)],
        ).unwrap();
        let sql = group_by(&rel.customers, &["state"], &[Agg::CountStar]);
        prop_assert_eq!(fql.len(), sql.len());
        for row in sql.rows() {
            let (Cell::Str(state), Cell::Int(count)) = (&row[0], &row[1]) else {
                prop_assert!(false, "unexpected cell types");
                unreachable!()
            };
            let t = fql.lookup(&Value::str(state.as_ref())).unwrap();
            prop_assert_eq!(t.get("count").unwrap(), Value::Int(*count));
        }
    }

    /// Outer semantics: FDM's inner/outer split partitions exactly like
    /// the NULL-padded left outer join classifies.
    #[test]
    fn outer_semantics_agree(cfg in configs()) {
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let rel = to_relational(&data);

        let out = outer(&db, &["customers"]).unwrap();
        let inner_n = out.relation("customers.inner").unwrap().len();
        let outer_n = out.relation("customers.outer").unwrap().len();

        let sql = outer_join(&rel.customers, &rel.orders, "cid", "cid", OuterSide::Left);
        // padded rows = customers with no orders
        let date_col = sql.schema().index_of("date").unwrap();
        let padded = sql.rows().iter().filter(|r| r[date_col].is_null()).count();
        let matched_customers: std::collections::BTreeSet<i64> = sql
            .rows()
            .iter()
            .filter(|r| !r[date_col].is_null())
            .map(|r| match &r[0] { Cell::Int(i) => *i, _ => unreachable!() })
            .collect();

        prop_assert_eq!(outer_n, padded);
        prop_assert_eq!(inner_n, matched_customers.len());
        prop_assert_eq!(inner_n + outer_n, data.customers.len());
    }

    /// Sum/min/max/avg agree (modulo int-vs-float representation).
    #[test]
    fn aggregates_agree(cfg in configs()) {
        prop_assume!(cfg.customers > 0);
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let rel = to_relational(&data);
        let fql = group_and_aggregate(
            db.relation("customers").unwrap().as_ref(),
            &["state"],
            &[
                ("sum_age", AggSpec::Sum("age".into())),
                ("min_age", AggSpec::Min("age".into())),
                ("max_age", AggSpec::Max("age".into())),
            ],
        ).unwrap();
        let sql = group_by(
            &rel.customers,
            &["state"],
            &[Agg::Sum("age".into()), Agg::Min("age".into()), Agg::Max("age".into())],
        );
        prop_assert_eq!(fql.len(), sql.len());
        for row in sql.rows() {
            let Cell::Str(state) = &row[0] else { unreachable!() };
            let t = fql.lookup(&Value::str(state.as_ref())).unwrap();
            for (i, attr) in ["sum_age", "min_age", "max_age"].iter().enumerate() {
                let want = match &row[1 + i] {
                    Cell::Int(v) => *v,
                    other => panic!("expected int, got {other}"),
                };
                prop_assert_eq!(t.get(attr).unwrap(), Value::Int(want));
            }
        }
    }

    /// The reduced subdatabase holds exactly the participants of the
    /// denormalized join, relation by relation.
    #[test]
    fn reduce_matches_join_participants(cfg in configs()) {
        let data = generate(&cfg);
        let db = to_fdm(&data);
        let reduced = reduce_db(&db).unwrap();
        let active_customers: std::collections::BTreeSet<i64> =
            data.orders.iter().map(|(c, _, _, _)| *c).collect();
        let active_products: std::collections::BTreeSet<i64> =
            data.orders.iter().map(|(_, p, _, _)| *p).collect();
        prop_assert_eq!(reduced.relation("customers").unwrap().len(), active_customers.len());
        prop_assert_eq!(reduced.relation("products").unwrap().len(), active_products.len());
        prop_assert_eq!(reduced.relationship("order").unwrap().len(), data.orders.len());
    }
}
