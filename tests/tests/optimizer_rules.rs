//! Pins the PR 8 rule-engine optimizer's public contract:
//!
//! * `Query::optimize_for` is *exactly* `Optimizer::default()` — the
//!   back-compat wrapper may never drift from the rule engine it wraps;
//! * configuration beats environment beats default, end to end through
//!   `Optimizer::optimize` (not just `OptimizerConfig`'s own resolution);
//! * the `OptimizationRule` trait is implementable from outside the
//!   crate, and a custom rule drives through the same fixpoint loop with
//!   the same trace accounting as the built-ins;
//! * on randomized plan trees the driver terminates (converges under the
//!   default pass cap) and the optimized plan evaluates to the declared
//!   plan's keyed data — the "cost may change, results may not" contract,
//!   exercised under whatever `THREADS` the harness pins (the CI
//!   determinism job runs this file at 1 and 4);
//! * `docs/OPTIMIZER.md`'s traced transcript equals the live
//!   `Optimizer::explain_optimized` output.

use fdm_core::{RelationF, Value};
use fdm_expr::Params;
use fdm_fql::optimizer::{
    OptimizationRule, Optimizer, OptimizerConfig, PlanContext, ReorderStrategy,
};
use fdm_fql::plan::Query;
use fdm_fql::testutil::{chain_db, skewed_db};
use fdm_fql::AggSpec;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that touch the process-global optimizer env vars.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<T>(reorder: Option<&str>, join_cost: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved_r = std::env::var("FDM_PLAN_REORDER").ok();
    let saved_j = std::env::var("FDM_JOIN_COST").ok();
    let set = |k: &str, v: Option<&str>| match v {
        Some(v) => std::env::set_var(k, v),
        None => std::env::remove_var(k),
    };
    set("FDM_PLAN_REORDER", reorder);
    set("FDM_JOIN_COST", join_cost);
    let out = f();
    set("FDM_PLAN_REORDER", saved_r.as_deref());
    set("FDM_JOIN_COST", saved_j.as_deref());
    out
}

/// Keyed content of a result: every canonical row id with its tuple's
/// canonical data key.
fn keyed_data(rel: &RelationF) -> Vec<(Value, Value)> {
    rel.tuples()
        .unwrap()
        .into_iter()
        .map(|(k, t)| (k, t.data_key().unwrap()))
        .collect()
}

/// A small corpus spanning every operator the rules rewrite: join chains
/// (reorderable and pinned), pushable and pinned filters, constant
/// conjuncts, prunable projections, aggregates, sorts, limits.
fn corpus() -> Vec<Query> {
    vec![
        Query::scan("base"),
        Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2"),
        Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "nk", "k2")
            .filter("2 > 1 and nk >= 2", Params::new()),
        Query::scan("base")
            .join("wide", "wk", "k")
            .join("narrow", "wide.wv", "k2"),
        Query::scan("base")
            .filter("nk > 1", Params::new())
            .project(&["wk", "nk"])
            .group_agg(&["nk"], &[("n", AggSpec::Count)]),
        Query::scan("base")
            .join("narrow", "nk", "k2")
            .order_by("nk", fdm_fql::transform::Order::Desc)
            .limit(3),
        // a deferred construction error must ride through untouched
        Query::scan("base").filter("nk >", Params::new()),
    ]
}

#[test]
fn optimize_for_is_default_optimizer() {
    let db = skewed_db();
    for mode in [None, Some("off"), Some("adjacent"), Some("greedy")] {
        with_env(mode, None, || {
            for q in corpus() {
                assert_eq!(
                    q.clone().optimize_for(&db).explain(),
                    Optimizer::default().optimize(q.clone(), &db).explain(),
                    "optimize_for drifted from Optimizer::default() under \
                     FDM_PLAN_REORDER={mode:?} on:\n{}",
                    q.explain()
                );
            }
        });
    }
}

#[test]
fn config_beats_env_through_the_driver() {
    let db = skewed_db();
    let q = Query::scan("base")
        .join("wide", "wk", "k")
        .join("narrow", "nk", "k2");
    // env says off, config says greedy: the chain still reorders
    let forced = with_env(Some("off"), None, || {
        Optimizer::default()
            .with_config(OptimizerConfig::new().with_reorder(ReorderStrategy::Greedy))
            .optimize(q.clone(), &db)
    });
    let Query::Join { rel, .. } = &forced else {
        panic!("join stays on top: {}", forced.explain())
    };
    assert_eq!(
        rel,
        "wide",
        "greedy hoists narrow below wide:\n{}",
        forced.explain()
    );
    // env says greedy, config says off: declared order survives
    let pinned = with_env(Some("greedy"), None, || {
        Optimizer::default()
            .with_config(OptimizerConfig::new().with_reorder(ReorderStrategy::Off))
            .optimize(q.clone(), &db)
    });
    assert_eq!(
        pinned.explain(),
        q.clone().optimize().explain(),
        "explicit Off beats env greedy"
    );
    // and with nothing explicit, env decides
    let env_driven = with_env(Some("off"), None, || {
        Optimizer::default().optimize(q.clone(), &db)
    });
    assert_eq!(env_driven.explain(), q.optimize().explain());
}

/// A rule defined *outside* `fdm-fql`: collapses stacked `Limit` nodes to
/// the smaller bound. `limit(a).limit(b)` and `limit(min(a, b))` keep
/// exactly the same rows, so the results contract holds.
struct CollapseLimits;

impl OptimizationRule for CollapseLimits {
    fn name(&self) -> &'static str {
        "collapse_limits"
    }

    fn apply(&self, plan: &Query, _ctx: &PlanContext) -> Option<Query> {
        fn collapse(q: &Query) -> Option<Query> {
            match q {
                Query::Limit { input, k } => {
                    if let Query::Limit {
                        input: inner,
                        k: k2,
                    } = input.as_ref()
                    {
                        return Some(Query::Limit {
                            input: inner.clone(),
                            k: (*k).min(*k2),
                        });
                    }
                    collapse(input).map(|inner| Query::Limit {
                        input: Box::new(inner),
                        k: *k,
                    })
                }
                Query::Filter { input, pred } => collapse(input).map(|inner| Query::Filter {
                    input: Box::new(inner),
                    pred: pred.clone(),
                }),
                _ => None,
            }
        }
        collapse(plan)
    }
}

#[test]
fn external_rules_drive_through_the_same_fixpoint() {
    let db = skewed_db();
    let q = Query::scan("base")
        .order_by("nk", fdm_fql::transform::Order::Asc)
        .limit(5)
        .limit(3)
        .limit(4);
    let opt = Optimizer::new().with_rule(Box::new(CollapseLimits));
    let (collapsed, trace) = opt.optimize_traced(q.clone(), &db);
    assert!(trace.converged);
    assert_eq!(trace.fires("collapse_limits"), 2, "{:?}", trace.entries);
    let Query::Limit { k, input } = &collapsed else {
        panic!("limit survives: {}", collapsed.explain())
    };
    assert_eq!(*k, 3);
    assert!(
        !matches!(input.as_ref(), Query::Limit { .. }),
        "one limit left: {}",
        collapsed.explain()
    );
    assert_eq!(
        keyed_data(&q.eval(&db).unwrap()),
        keyed_data(&collapsed.eval(&db).unwrap())
    );
    // and it composes with the built-ins
    let full = Optimizer::default().with_rule(Box::new(CollapseLimits));
    assert_eq!(full.rule_names().len(), 6);
    assert_eq!(
        keyed_data(&full.optimize(q.clone(), &db).eval(&db).unwrap()),
        keyed_data(&q.eval(&db).unwrap())
    );
}

#[test]
fn greedy_beats_adjacent_on_the_chain_fixture() {
    // the fixture where adjacent swaps are stuck: a (fan-out 8) must stay
    // before dependent b, and (b, c) ties — only whole-chain enumeration
    // hoists the independent fan-out-1 c below everything
    let db = chain_db(8);
    let q = Query::scan("base")
        .join("a", "ak", "k")
        .join("b", "a.av", "k2")
        .join("c", "ck", "k3");
    let optimize_under = |strategy: ReorderStrategy| {
        Optimizer::default()
            .with_config(OptimizerConfig::new().with_reorder(strategy))
            .optimize(q.clone(), &db)
    };
    let adjacent = optimize_under(ReorderStrategy::Adjacent);
    let greedy = optimize_under(ReorderStrategy::Greedy);
    assert_eq!(
        adjacent.explain(),
        q.explain(),
        "no adjacent swap improves the declared chain"
    );
    assert_ne!(greedy.explain(), q.explain(), "greedy reorders it");
    let (_, s_declared) = q.eval_with_stats(&db).unwrap();
    let (_, s_greedy) = greedy.eval_with_stats(&db).unwrap();
    assert!(
        s_greedy.total_intermediate() < s_declared.total_intermediate(),
        "measured intermediates shrink: {} vs {}",
        s_greedy.total_intermediate(),
        s_declared.total_intermediate()
    );
    assert_eq!(
        keyed_data(&q.eval(&db).unwrap()),
        keyed_data(&greedy.eval(&db).unwrap())
    );
}

#[test]
fn optimizer_md_traced_transcript_is_live() {
    // docs/OPTIMIZER.md shows a real `explain_optimized` run; the fenced
    // block between the trace-transcript markers must equal live output.
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/OPTIMIZER.md"))
        .expect("docs/OPTIMIZER.md exists");
    let begin = md
        .find("<!-- trace-transcript:begin -->")
        .expect("trace-transcript begin marker");
    let end = md
        .find("<!-- trace-transcript:end -->")
        .expect("trace-transcript end marker");
    let block = &md[begin..end];
    let fence_open = block.find("```text").expect("```text fence") + "```text\n".len();
    let fence_close = block[fence_open..].find("```").expect("closing fence") + fence_open;
    let documented = &block[fence_open..fence_close];

    let db = chain_db(8);
    let q = Query::scan("base")
        .join("a", "ak", "k")
        .join("b", "a.av", "k2")
        .join("c", "ck", "k3")
        .filter("2 > 1 and ck <= 4", Params::new());
    let actual = with_env(None, None, || {
        Optimizer::default().explain_optimized(q, &db).unwrap()
    });
    assert_eq!(
        documented, actual,
        "docs/OPTIMIZER.md traced transcript drifted from real \
         explain_optimized output"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random plan trees over the skewed fixture: the driver always
    /// converges under the default pass cap, and the optimized plan
    /// produces the declared plan's keyed data exactly — under every
    /// reordering strategy.
    #[test]
    fn fixpoint_terminates_and_preserves_results(
        join_shape in 0usize..4,
        filter_shape in 0usize..4,
        tail_shape in 0usize..4,
        strategy in 0usize..3,
    ) {
        let db = skewed_db();
        let mut q = Query::scan("base");
        if join_shape & 1 != 0 {
            q = q.join("wide", "wk", "k");
        }
        if join_shape & 2 != 0 {
            q = q.join("narrow", "nk", "k2");
        }
        q = match filter_shape {
            1 => q.filter("nk > 1", Params::new()),
            2 => q.filter("2 > 1 and nk >= 2 and wk <= 5", Params::new()),
            3 => q.filter("1 > 2", Params::new()),
            _ => q,
        };
        q = match tail_shape {
            1 => q.project(&["nk", "wk"]),
            2 => q.group_agg(&["nk"], &[("n", AggSpec::Count)]),
            3 => q.order_by("nk", fdm_fql::transform::Order::Asc).limit(4),
            _ => q,
        };
        let strategy = [
            ReorderStrategy::Off,
            ReorderStrategy::Adjacent,
            ReorderStrategy::Greedy,
        ][strategy];
        let opt = Optimizer::default()
            .with_config(OptimizerConfig::new().with_reorder(strategy));
        let (optimized, trace) = opt.optimize_traced(q.clone(), &db);
        prop_assert!(
            trace.converged,
            "must converge under the default cap: {:?}",
            trace.fire_counts()
        );
        prop_assert_eq!(
            keyed_data(&q.eval(&db).unwrap()),
            keyed_data(&optimized.eval(&db).unwrap())
        );
    }
}
