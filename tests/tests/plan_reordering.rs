//! Pins the plan-level join-reordering guarantee: `Query::optimize_for`
//! may change the **order** adjacent `Join` nodes execute in, never
//! **what** the plan produces. The enabling invariant is the canonical
//! row-id scheme (row ids derived from each output tuple's cached
//! `DataKey` fingerprint, not from emission order — see
//! `fdm_fql::plan`'s module docs and `docs/OPTIMIZER.md`).
//!
//! Mirroring `join_planning.rs`, two layers of pinning:
//!
//! * on a database crafted so the reordered plan genuinely differs from
//!   the declared left-deep order (and the test *proves* they differ by
//!   reading the executed order off `explain` and off the attribute
//!   declaration order of the output rows), the results are identical as
//!   keyed data: the same canonical row ids mapping to tuples with equal
//!   canonical data keys;
//! * `FDM_PLAN_REORDER=off` restores the declared order exactly —
//!   `explain` output equal to the statistics-free `optimize`.
//!
//! A property test repeats the equivalence on randomized fan-out-skewed
//! databases, and a transcript test keeps `docs/OPTIMIZER.md`'s worked
//! `explain_with_cost` example in sync with the real tool output.

use fdm_core::{DatabaseF, RelationBuilder, RelationF, TupleF, Value};
use fdm_expr::Params;
use fdm_fql::plan::Query;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that flip `FDM_PLAN_REORDER` (env vars are
/// process-global; the harness runs tests concurrently).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_reorder<T>(mode: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("FDM_PLAN_REORDER").ok();
    match mode {
        Some(v) => std::env::set_var("FDM_PLAN_REORDER", v),
        None => std::env::remove_var("FDM_PLAN_REORDER"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("FDM_PLAN_REORDER", v),
        None => std::env::remove_var("FDM_PLAN_REORDER"),
    }
    out
}

/// A database where the declared join order is the expensive one. `base`
/// rows join `wide.k` with fan-out `wide_fanout` and `narrow.k2` with
/// fan-out 1; the declared plan binds `wide` first, multiplying the
/// working rows before the cheap extension — exactly the shape the
/// statistics should fix.
fn skewed_db(base_rows: i64, wide_fanout: usize, narrow_per_key: usize) -> DatabaseF {
    let mut base = RelationBuilder::new("base", &["id"]);
    for i in 1..=base_rows {
        base.push(
            Value::Int(i),
            TupleF::builder("b")
                .attr("wk", i)
                .attr("nk", i)
                .attr("tag", format!("b{i}"))
                .build(),
        );
    }
    let mut wide = RelationBuilder::new("wide", &["wid"]);
    let mut wid = 0i64;
    for k in 1..=base_rows {
        for _ in 0..wide_fanout {
            wid += 1;
            wide.push(
                Value::Int(wid),
                TupleF::builder("w").attr("k", k).attr("wv", wid).build(),
            );
        }
    }
    let mut narrow = RelationBuilder::new("narrow", &["nid"]);
    let mut nid = 0i64;
    for k in 1..=base_rows {
        for _ in 0..narrow_per_key {
            nid += 1;
            narrow.push(
                Value::Int(nid),
                TupleF::builder("n").attr("k2", k).attr("nv", k * 7).build(),
            );
        }
    }
    DatabaseF::new("skewed")
        .with_relation(base.build().unwrap())
        .with_relation(wide.build().unwrap())
        .with_relation(narrow.build().unwrap())
}

fn declared_query() -> Query {
    Query::scan("base")
        .join("wide", "wk", "k")
        .join("narrow", "nk", "k2")
}

/// Depth of the line mentioning `needle` in an `explain` tree — deeper
/// lines execute earlier.
fn depth_of(plan: &str, needle: &str) -> usize {
    plan.lines()
        .find(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("no line mentions {needle} in:\n{plan}"))
        .chars()
        .take_while(|c| *c == ' ')
        .count()
}

/// Which join ran first, read off the attribute declaration order the
/// executed plan leaves behind in the output rows.
fn first_executed(rel: &RelationF, earlier: &str, later: &str) -> bool {
    let (_, t) = rel.tuples().unwrap().remove(0);
    let names: Vec<String> = t.attr_names().map(|n| n.to_string()).collect();
    let pos = |prefix: &str| {
        names
            .iter()
            .position(|n| n.starts_with(prefix))
            .unwrap_or_else(|| panic!("no attribute with prefix {prefix} in {names:?}"))
    };
    pos(earlier) < pos(later)
}

/// The keyed content of a plan result: every canonical row id with its
/// tuple's canonical data key.
fn keyed_data(rel: &RelationF) -> Vec<(Value, Value)> {
    rel.tuples()
        .unwrap()
        .into_iter()
        .map(|(k, t)| (k, t.data_key().unwrap()))
        .collect()
}

#[test]
fn reordering_changes_the_plan_never_the_results() {
    let db = skewed_db(8, 5, 1);
    let q = declared_query();

    let reordered = with_reorder(None, || q.clone().optimize_for(&db));
    let pinned = with_reorder(Some("off"), || q.clone().optimize_for(&db));

    // the plans genuinely differ: reordering binds the fan-out-1 narrow
    // join before the row-multiplying wide join; `off` keeps declared
    let plan = reordered.explain();
    assert!(
        depth_of(&plan, "narrow") > depth_of(&plan, "wide"),
        "narrow executes first when reordered:\n{plan}"
    );
    assert_eq!(
        pinned.explain(),
        q.clone().optimize().explain(),
        "FDM_PLAN_REORDER=off restores the declared-order plan"
    );

    // the executed order is visible in the output attribute order...
    let by_declared = q.eval(&db).unwrap();
    let by_reordered = reordered.eval(&db).unwrap();
    let by_pinned = pinned.eval(&db).unwrap();
    assert!(first_executed(&by_declared, "wide.", "narrow."));
    assert!(first_executed(&by_reordered, "narrow.", "wide."));

    // ...yet the keyed results are identical as data: same canonical row
    // ids, equal canonical data keys under every id
    assert_eq!(by_declared.len(), 40, "8 base × 5 wide × 1 narrow");
    assert_eq!(keyed_data(&by_declared), keyed_data(&by_reordered));
    assert_eq!(keyed_data(&by_declared), keyed_data(&by_pinned));

    // the reordered plan also *measures* cheaper, not just estimates
    let (_, s_declared) = q.eval_with_stats(&db).unwrap();
    let (_, s_reordered) = reordered.eval_with_stats(&db).unwrap();
    assert!(
        s_reordered.total_intermediate() < s_declared.total_intermediate(),
        "reordering shrinks intermediates: {} vs {}",
        s_reordered.total_intermediate(),
        s_declared.total_intermediate()
    );
}

#[test]
fn reordering_composes_with_pushdown() {
    let db = skewed_db(8, 5, 1);
    let q = declared_query().filter("tag == 'b3'", Params::new());
    let opt = with_reorder(None, || q.clone().optimize_for(&db));
    let plan = opt.explain();
    // the filter references only base attrs: pushed below both joins,
    // and the joins still swap above it
    assert!(
        depth_of(&plan, "filter") > depth_of(&plan, "narrow"),
        "{plan}"
    );
    assert!(
        depth_of(&plan, "narrow") > depth_of(&plan, "wide"),
        "{plan}"
    );
    assert_eq!(
        keyed_data(&q.eval(&db).unwrap()),
        keyed_data(&opt.eval(&db).unwrap())
    );
}

#[test]
fn optimizer_md_transcript_is_live() {
    // docs/OPTIMIZER.md walks through this exact query; the fenced block
    // between the transcript markers must equal the real tool output, so
    // the doc can never silently go stale.
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/OPTIMIZER.md"))
        .expect("docs/OPTIMIZER.md exists");
    let begin = md
        .find("<!-- transcript:begin -->")
        .expect("transcript begin marker");
    let end = md.find("<!-- transcript:end -->").expect("end marker");
    let block = &md[begin..end];
    let fence_open = block.find("```text").expect("```text fence") + "```text\n".len();
    let fence_close = block[fence_open..].find("```").expect("closing fence") + fence_open;
    let documented = &block[fence_open..fence_close];

    let db = fdm_fql::testutil::retail_db();
    let orders = db
        .relationship("order")
        .unwrap()
        .to_relation()
        .renamed("orders");
    let db = db.with_relation(orders);
    let q = Query::scan("orders")
        .join("customers", "cid", "cid")
        .filter("date > '2026-02'", Params::new());
    let actual = with_reorder(None, || q.optimize_for(&db).explain_with_cost(&db).unwrap());
    assert_eq!(
        documented, actual,
        "docs/OPTIMIZER.md transcript drifted from real explain_with_cost output"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On randomized fan-out-skewed databases, the optimized plan (which
    /// may or may not reorder, depending on the drawn skew) produces
    /// exactly the declared plan's keyed data.
    #[test]
    fn optimized_plans_are_data_identical(
        base_rows in 1i64..16,
        wide_fanout in 1usize..6,
        narrow_per_key in 1usize..4,
        with_filter in any::<bool>(),
    ) {
        let db = skewed_db(base_rows, wide_fanout, narrow_per_key);
        let mut q = declared_query();
        if with_filter {
            q = q.filter("nk > 1", Params::new());
        }
        let opt = q.clone().optimize_for(&db);
        let declared = q.eval(&db).unwrap();
        let optimized = opt.eval(&db).unwrap();
        prop_assert_eq!(
            declared.len(),
            (if with_filter { (base_rows - 1).max(0) } else { base_rows }
                as usize) * wide_fanout * narrow_per_key
        );
        prop_assert_eq!(keyed_data(&declared), keyed_data(&optimized));
    }
}
