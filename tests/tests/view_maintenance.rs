//! The differential oracle for incremental view maintenance (PR 9):
//! after every mutation, a [`MaintainedView`] fed only the delta must
//! equal re-running its plan from scratch — same canonical keys, same
//! tuple data, same order (`fdm_tests::assert_view_equiv`).
//!
//! Covered here:
//!
//! * every plan operator (scan, filter, project, join, group/aggregate,
//!   order-by, limit) × every mutation kind (insert, remove, update);
//! * whole-entry rebinds (`EntryDelta::Replaced`, what a transactional
//!   `Assign` produces) routed through the scoped-recompute fallback,
//!   pinned by the `fallback_recomputes` counter;
//! * a long seeded mutation stream (1200+ steps) over a
//!   scan→join→filter→group plan, oracle-checked at every step;
//! * proptest: random plan trees (the optimizer-rules generator shapes)
//!   × random mutation streams — run under whatever `THREADS` the
//!   harness pins (the CI determinism job runs this file at 1 and 4);
//! * `docs/VIEWS.md`'s worked transcript equals live output.

use fdm_core::delta::{DbDelta, EntryDelta};
use fdm_core::{DatabaseF, FnValue, TupleF, Value};
use fdm_expr::Params;
use fdm_fql::plan::Query;
use fdm_fql::testutil::{retail_db, skewed_db};
use fdm_fql::transform::Order;
use fdm_fql::update::{db_delete, db_upsert};
use fdm_fql::{AggSpec, MaintainedView};
use fdm_tests::assert_view_equiv;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies one delta (computed by diffing the database values) and
/// checks the oracle. Returns the number of output rows that changed.
fn step(view: &mut MaintainedView, before: &DatabaseF, after: &DatabaseF, ctx: &str) -> usize {
    let delta = DbDelta::between(before, after).expect("diffable databases");
    let n = view.apply(after, &delta).expect("delta application");
    assert_view_equiv(view, after, ctx);
    n
}

fn base_row(wk: i64, nk: i64) -> TupleF {
    TupleF::builder("b").attr("wk", wk).attr("nk", nk).build()
}

fn wide_row(k: i64, wv: i64) -> TupleF {
    TupleF::builder("w").attr("k", k).attr("wv", wv).build()
}

fn narrow_row(k2: i64, nv: i64) -> TupleF {
    TupleF::builder("n").attr("k2", k2).attr("nv", nv).build()
}

/// One plan per operator the executor supports, all over `skewed_db`.
fn operator_corpus() -> Vec<(&'static str, Query)> {
    vec![
        ("scan", Query::scan("base")),
        (
            "filter",
            Query::scan("base").filter("nk > 1", Params::new()),
        ),
        ("project", Query::scan("base").project(&["wk", "nk"])),
        ("join", Query::scan("base").join("wide", "wk", "k")),
        (
            "join_chain_filter",
            Query::scan("base")
                .join("wide", "wk", "k")
                .join("narrow", "nk", "k2")
                .filter("2 > 1 and nk >= 2", Params::new()),
        ),
        (
            "group_agg",
            Query::scan("base").group_agg(
                &["nk"],
                &[("n", AggSpec::Count), ("total", AggSpec::Sum("wk".into()))],
            ),
        ),
        (
            "order_by_limit",
            Query::scan("base").order_by("nk", Order::Desc).limit(3),
        ),
    ]
}

/// The shared mutation script: inserts, updates (both value-only and
/// join-key rewires), and removes, on every base relation a plan can
/// touch. Returns each intermediate database, oldest first.
type MutationStep = (&'static str, Box<dyn Fn(&DatabaseF) -> DatabaseF>);

fn mutation_script(db0: &DatabaseF) -> Vec<(&'static str, DatabaseF)> {
    let mut out: Vec<(&'static str, DatabaseF)> = Vec::new();
    let mut db = db0.clone();
    let steps: Vec<MutationStep> = vec![
        (
            "insert base",
            Box::new(|d| db_upsert(d, "base", Value::Int(7), base_row(2, 1)).unwrap()),
        ),
        (
            "update base value",
            Box::new(|d| db_upsert(d, "base", Value::Int(7), base_row(2, 5)).unwrap()),
        ),
        (
            "rewire base join key",
            Box::new(|d| db_upsert(d, "base", Value::Int(1), base_row(6, 1)).unwrap()),
        ),
        (
            "remove base",
            Box::new(|d| db_delete(d, "base", &Value::Int(3)).unwrap()),
        ),
        (
            "insert wide",
            Box::new(|d| db_upsert(d, "wide", Value::Int(99), wide_row(2, 990)).unwrap()),
        ),
        (
            "update wide value",
            Box::new(|d| db_upsert(d, "wide", Value::Int(1), wide_row(1, -1)).unwrap()),
        ),
        (
            "rewire wide join key",
            Box::new(|d| db_upsert(d, "wide", Value::Int(2), wide_row(5, 2)).unwrap()),
        ),
        (
            "remove wide",
            Box::new(|d| db_delete(d, "wide", &Value::Int(3)).unwrap()),
        ),
        (
            "insert narrow",
            Box::new(|d| db_upsert(d, "narrow", Value::Int(9), narrow_row(5, 55)).unwrap()),
        ),
        (
            "update narrow",
            Box::new(|d| db_upsert(d, "narrow", Value::Int(2), narrow_row(2, -20)).unwrap()),
        ),
        (
            "remove narrow",
            Box::new(|d| db_delete(d, "narrow", &Value::Int(5)).unwrap()),
        ),
    ];
    for (label, apply) in steps {
        db = apply(&db);
        out.push((label, db.clone()));
    }
    out
}

#[test]
fn every_operator_tracks_every_mutation_kind() {
    let db0 = skewed_db();
    for (op, plan) in operator_corpus() {
        let mut view =
            MaintainedView::new(format!("v_{op}"), plan, &db0).expect("initial evaluation");
        assert_view_equiv(&view, &db0, &format!("{op}: initial materialization"));
        let mut before = db0.clone();
        for (label, after) in mutation_script(&db0) {
            step(&mut view, &before, &after, &format!("{op}: after {label}"));
            before = after;
        }
    }
}

#[test]
fn no_op_deltas_change_nothing() {
    let db = skewed_db();
    for (op, plan) in operator_corpus() {
        let mut view = MaintainedView::new(format!("v_{op}"), plan, &db).unwrap();
        // identical before/after: the delta is empty, nothing recomputes
        let n = step(&mut view, &db, &db, &format!("{op}: no-op delta"));
        assert_eq!(n, 0, "{op}: empty delta must touch no rows");
        assert_eq!(view.stats().fallback_recomputes, 0, "{op}");
        // a write to an unrelated entry is equally invisible
        let other = db_upsert(&db, "narrow", Value::Int(77), narrow_row(7, 770)).unwrap();
        if op == "scan" || op == "filter" || op == "project" {
            let n = step(&mut view, &db, &other, &format!("{op}: unrelated write"));
            assert_eq!(n, 0, "{op}: unrelated relation must not disturb the view");
        }
    }
}

#[test]
fn whole_entry_rebinds_recompute_scoped_and_count_fallbacks() {
    let db = skewed_db();
    let mut view =
        MaintainedView::new("joined", Query::scan("base").join("wide", "wk", "k"), &db).unwrap();
    assert_eq!(view.stats().fallback_recomputes, 0);

    // what a transactional `Assign("wide", ...)` becomes: the whole
    // entry is replaced, with genuinely different data inside
    let halved = {
        let mut rel = db.relation("wide").unwrap().as_ref().clone();
        for wid in 13..=24i64 {
            rel = rel.delete(&Value::Int(wid)).unwrap();
        }
        rel
    };
    let db2 = db.with_entry("wide", FnValue::from(halved));
    let delta = DbDelta {
        entries: vec![(fdm_core::Name::from("wide"), EntryDelta::Replaced)],
    };
    view.apply(&db2, &delta).unwrap();
    assert_view_equiv(&view, &db2, "after wide was rebound wholesale");
    assert!(
        view.stats().fallback_recomputes >= 1,
        "a Replaced entry must go through the explicit fallback counter"
    );

    // point writes afterwards flow incrementally again
    let before_fallbacks = view.stats().fallback_recomputes;
    let db3 = db_upsert(&db2, "base", Value::Int(8), base_row(3, 3)).unwrap();
    step(&mut view, &db2, &db3, "point write after a rebind");
    assert_eq!(
        view.stats().fallback_recomputes,
        before_fallbacks,
        "row deltas must not fall back"
    );
}

#[test]
fn long_seeded_mutation_stream_stays_equivalent() {
    let db0 = skewed_db();
    let plan = Query::scan("base")
        .join("wide", "wk", "k")
        .filter("nk >= 2", Params::new())
        .group_agg(
            &["nk"],
            &[("n", AggSpec::Count), ("w", AggSpec::Sum("wide.wv".into()))],
        );
    let mut view = MaintainedView::new("stream", plan, &db0).unwrap();
    let mut rng = StdRng::seed_from_u64(0x9_2026);
    let mut db = db0;
    let mut next_id = 100i64;
    for i in 0..1200 {
        let rel = if rng.random_range(0..3) == 0 {
            "wide"
        } else {
            "base"
        };
        let keys: Vec<Value> = db
            .relation(rel)
            .unwrap()
            .tuples()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let action = rng.random_range(0..4u32);
        let after = match action {
            // insert a fresh row (ids never collide with the fixture's)
            0 => {
                next_id += 1;
                let t = if rel == "base" {
                    base_row(rng.random_range(1..=8), rng.random_range(1..=8))
                } else {
                    wide_row(rng.random_range(1..=8), next_id)
                };
                db_upsert(&db, rel, Value::Int(next_id), t).unwrap()
            }
            // remove a random existing row (keep a floor so joins stay
            // interesting)
            1 if keys.len() > 3 => {
                let k = keys[rng.random_range(0..keys.len())].clone();
                db_delete(&db, rel, &k).unwrap()
            }
            // update: value-only or join-key rewire
            _ if !keys.is_empty() => {
                let k = keys[rng.random_range(0..keys.len())].clone();
                let t = if rel == "base" {
                    base_row(rng.random_range(1..=8), rng.random_range(1..=8))
                } else {
                    wide_row(rng.random_range(1..=8), rng.random_range(-50..50))
                };
                db_upsert(&db, rel, k, t).unwrap()
            }
            _ => continue,
        };
        step(&mut view, &db, &after, &format!("stream step {i}"));
        db = after;
    }
    let stats = view.stats();
    assert!(stats.deltas_applied >= 1000, "{stats:?}");
    assert_eq!(
        stats.fallback_recomputes, 0,
        "a pure point-write stream never falls back: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random plan trees (the optimizer-rules generator shapes) held as
    /// maintained views through random mutation streams: incremental
    /// equals recompute at every step.
    #[test]
    fn random_plans_survive_random_mutation_streams(
        join_shape in 0usize..4,
        filter_shape in 0usize..4,
        tail_shape in 0usize..4,
        seed in 0u64..1u64 << 32,
    ) {
        let db0 = skewed_db();
        let mut q = Query::scan("base");
        if join_shape & 1 != 0 {
            q = q.join("wide", "wk", "k");
        }
        if join_shape & 2 != 0 {
            q = q.join("narrow", "nk", "k2");
        }
        q = match filter_shape {
            1 => q.filter("nk > 1", Params::new()),
            2 => q.filter("2 > 1 and nk >= 2 and wk <= 5", Params::new()),
            3 => q.filter("1 > 2", Params::new()),
            _ => q,
        };
        q = match tail_shape {
            1 => q.project(&["nk", "wk"]),
            2 => q.group_agg(&["nk"], &[("n", AggSpec::Count)]),
            3 => q.order_by("nk", Order::Asc).limit(4),
            _ => q,
        };
        let mut view = MaintainedView::new("prop", q, &db0).expect("initial evaluation");
        assert_view_equiv(&view, &db0, "proptest: initial materialization");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = db0;
        let mut next_id = 1000i64;
        for i in 0..30 {
            let rel = ["base", "wide", "narrow"][rng.random_range(0..3usize)];
            let keys: Vec<Value> = db
                .relation(rel)
                .unwrap()
                .tuples()
                .unwrap()
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let fresh = |rng: &mut StdRng| match rel {
                "base" => base_row(rng.random_range(1..=8), rng.random_range(1..=8)),
                "wide" => wide_row(rng.random_range(1..=8), rng.random_range(-50..50)),
                _ => narrow_row(rng.random_range(1..=8), rng.random_range(-50..50)),
            };
            let after = match rng.random_range(0..4u32) {
                0 => {
                    next_id += 1;
                    db_upsert(&db, rel, Value::Int(next_id), fresh(&mut rng)).unwrap()
                }
                1 if keys.len() > 2 => {
                    let k = keys[rng.random_range(0..keys.len())].clone();
                    db_delete(&db, rel, &k).unwrap()
                }
                _ if !keys.is_empty() => {
                    let k = keys[rng.random_range(0..keys.len())].clone();
                    db_upsert(&db, rel, k, fresh(&mut rng)).unwrap()
                }
                _ => continue,
            };
            let delta = DbDelta::between(&db, &after).unwrap();
            view.apply(&after, &delta).unwrap();
            assert_view_equiv(&view, &after, &format!("proptest step {i}"));
            db = after;
        }
    }
}

/// The worked transcript in `docs/VIEWS.md`, regenerated live: a
/// maintained filter view over the retail fixture followed through
/// three commits' worth of deltas.
fn views_md_transcript() -> String {
    let db0 = retail_db();
    let mut view = MaintainedView::new(
        "olds",
        Query::scan("customers").filter("age > $min", Params::new().set("min", 42)),
        &db0,
    )
    .unwrap();
    let mut out = String::new();
    let mut line = |view: &MaintainedView, label: &str| {
        let s = view.stats();
        out.push_str(&format!(
            "{label:<44} | {} rows, {} deltas applied, {} rows changed\n",
            view.relation().len(),
            s.deltas_applied,
            s.rows_changed,
        ));
    };
    line(&view, "DB('olds') := filter(customers, age > 42)");
    let steps = [
        (
            "v1  upsert customers[9] = (Zoe, 70)",
            db_upsert(
                &db0,
                "customers",
                Value::Int(9),
                TupleF::builder("c9")
                    .attr("name", "Zoe")
                    .attr("age", 70)
                    .build(),
            )
            .unwrap(),
        ),
        (
            "v2  upsert customers[2] = (Bob, 61)",
            db_upsert(
                &db_upsert(
                    &db0,
                    "customers",
                    Value::Int(9),
                    TupleF::builder("c9")
                        .attr("name", "Zoe")
                        .attr("age", 70)
                        .build(),
                )
                .unwrap(),
                "customers",
                Value::Int(2),
                TupleF::builder("c2")
                    .attr("name", "Bob")
                    .attr("age", 61)
                    .build(),
            )
            .unwrap(),
        ),
    ];
    let mut before = db0;
    for (label, after) in steps {
        step(&mut view, &before, &after, label);
        line(&view, label);
        before = after;
    }
    let after = db_delete(&before, "customers", &Value::Int(3)).unwrap();
    step(&mut view, &before, &after, "delete");
    line(&view, "v3  delete customers[3]            (Carol)");
    out
}

#[test]
fn views_md_worked_transcript_is_live() {
    let md = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/VIEWS.md"))
        .expect("docs/VIEWS.md exists");
    let begin = md
        .find("<!-- ivm-transcript:begin -->")
        .expect("ivm-transcript begin marker");
    let end = md
        .find("<!-- ivm-transcript:end -->")
        .expect("ivm-transcript end marker");
    let block = &md[begin..end];
    let fence_open = block.find("```text").expect("```text fence") + "```text\n".len();
    let fence_close = block[fence_open..].find("```").expect("closing fence") + fence_open;
    let documented = &block[fence_open..fence_close];
    assert_eq!(
        documented,
        views_md_transcript(),
        "docs/VIEWS.md worked transcript drifted from live output"
    );
}
