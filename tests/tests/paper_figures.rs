//! Every artifact of the paper — the §2.2 table and Figures 1–11 — as an
//! executable, asserted scenario. This is the reproduction's ground
//! truth: if a figure's semantics drifted, a test here breaks.

use fdm_core::{
    apply1, DatabaseF, Domain, FnValue, Function, Participant, RelationF, RelationshipF,
    SharedDomain, TupleF, Value, ValueType,
};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::testutil::retail_db;
use fdm_fql::{aggregate, group};
use fdm_txn::Store;

/// §2.2 table: tuple, relation, database, set-of-databases are all the
/// same construct — a function — and can be called uniformly.
#[test]
fn t1_uniform_abstraction_across_levels() {
    let t1 = TupleF::builder("t1")
        .attr("name", "Alice")
        .attr("foo", 12)
        .build();
    let r1 = RelationF::new("R1", &["bar"])
        .insert(Value::Int(1), t1.clone())
        .unwrap();
    let db = DatabaseF::new("DB").with_relation(r1.clone());
    let fleet = DatabaseF::new("fleet").with_entry("DB", FnValue::from(db.clone()));

    // all four levels go through the SAME trait with the SAME call shape:
    let levels: Vec<(&dyn Function, Value)> = vec![
        (&t1, Value::str("foo")),
        (&r1, Value::Int(1)),
        (&db, Value::str("R1")),
        (&fleet, Value::str("DB")),
    ];
    for (f, arg) in levels {
        assert_eq!(f.arity(), 1);
        assert!(f.domain().contains(&arg));
        assert!(
            apply1(f, &arg).is_ok(),
            "{} must be defined at {arg}",
            f.fn_name()
        );
    }
    // and the chain composes: fleet('DB')('R1')(1)('foo') = 12
    let db_v = apply1(&fleet, &Value::str("DB")).unwrap();
    let r_v = db_v
        .as_fn("db")
        .unwrap()
        .apply(&[Value::str("R1")])
        .unwrap();
    let t_v = r_v.as_fn("rel").unwrap().apply(&[Value::Int(1)]).unwrap();
    let foo = t_v
        .as_fn("tuple")
        .unwrap()
        .apply(&[Value::str("foo")])
        .unwrap();
    assert_eq!(foo, Value::Int(12));
}

/// Fig. 1: the ER schema compiled to FDM has the relationship function
/// `order(cid, pid)` whose parameters share the entity key domains.
#[test]
fn f1_erm_vs_fdm() {
    let schema = fdm_erm::retail_schema();
    let db = fdm_erm::compile_to_fdm(&schema);
    let order = db.relationship("order").unwrap();
    assert_eq!(order.arity_k(), 2);
    assert!(order.participants()[0]
        .domain
        .same_as(db.shared_domain("customers.cid").unwrap()));
    assert!(order.participants()[1]
        .domain
        .same_as(db.shared_domain("products.pid").unwrap()));

    let rel = fdm_erm::compile_to_relational(&schema);
    assert!(rel.table("order").is_some(), "classical: junction table");
    assert_eq!(
        rel.foreign_keys.len(),
        2,
        "classical: FKs as separate metadata"
    );
}

/// Fig. 2: a k-ary relationship function over arbitrary functions.
#[test]
fn f2_relationship_function_general_idea() {
    let dx = SharedDomain::new("x", Domain::Typed(ValueType::Int));
    let dy = SharedDomain::new("y", Domain::Typed(ValueType::Int));
    let dz = SharedDomain::new("z", Domain::Typed(ValueType::Int));
    let rf = RelationshipF::new(
        "rf",
        vec![
            Participant::new("fx", "x", dx),
            Participant::new("fy", "y", dy),
            Participant::new("fz", "z", dz),
        ],
    )
    .insert_link(&[Value::Int(1), Value::Int(2), Value::Int(3)])
    .unwrap();
    assert!(rf.relates(&[Value::Int(1), Value::Int(2), Value::Int(3)]));
    assert!(!rf.relates(&[Value::Int(1), Value::Int(2), Value::Int(4)]));
    assert_eq!(rf.arity(), 3);
}

/// Fig. 3: a relationship between a *database* and a relation —
/// `is_accessed_by(rel_name, uid)` — inexpressible in classical ERM.
#[test]
fn f3_relationship_between_database_and_relation() {
    let db = retail_db();
    let users = RelationF::new("users", &["uid"])
        .insert(
            Value::Int(100),
            TupleF::builder("u").attr("login", "jens").build(),
        )
        .unwrap();
    // participants: the DATABASE function (keyed by rel_name) and users
    let rel_name_dom = SharedDomain::new("rel_name", Domain::Typed(ValueType::Str));
    let uid_dom = SharedDomain::new("uid", Domain::Typed(ValueType::Int));
    let accessed = RelationshipF::new(
        "is_accessed_by",
        vec![
            Participant::new("DB", "rel_name", rel_name_dom),
            Participant::new("users", "uid", uid_dom),
        ],
    )
    .insert(
        &[Value::str("customers"), Value::Int(100)],
        TupleF::builder("a").attr("date", "2026-06-12").build(),
    )
    .unwrap();
    assert!(accessed.relates(&[Value::str("customers"), Value::Int(100)]));
    // the relationship points at the RELATION (an entry of the DB
    // function), not at metadata: we can follow it
    let rel_v = apply1(&db, &Value::str("customers")).unwrap();
    let rel = rel_v.as_fn("entry").unwrap().as_relation().unwrap();
    assert_eq!(rel.len(), 3);
    // and both participants + the relationship can live in one database
    let db2 = db.with_relation(users).with_relationship(accessed);
    assert!(db2.relationship("is_accessed_by").is_ok());
}

/// Fig. 4a: six filter costumes, one semantics (details per costume are
/// unit-tested in fdm-fql; here we assert the cross-crate path).
#[test]
fn f4a_filter_costumes() {
    let db = retail_db();
    let customers = db.relation("customers").unwrap();
    let by_expr = filter_expr(&customers, "age>$foo", Params::new().set("foo", 42)).unwrap();
    let by_fn = filter_fn(&customers, |t| Ok(t.get("age")?.as_int("age")? > 42)).unwrap();
    let by_kwargs = filter_kwargs(&customers, &[("age__gt", Value::Int(42))]).unwrap();
    assert_eq!(by_expr.len(), 2);
    assert_eq!(by_fn.len(), by_expr.len());
    assert_eq!(by_kwargs.len(), by_expr.len());
}

/// Fig. 4b/4c: group → DB of relation functions; aggregate; having.
#[test]
fn f4bc_group_aggregate_having() {
    let db = retail_db();
    let customers = db.relation("customers").unwrap();
    let groups = group(&customers, &["age"]).unwrap();
    // "a DB of relation functions representing age_groups"
    let as_db = groups.to_database();
    assert_eq!(as_db.len(), 3, "ages 30, 43, 55");
    let aggregates = aggregate(&groups, &[("count", AggSpec::Count)]).unwrap();
    let large = filter_expr(&aggregates, "count > $n", Params::new().set("n", 0)).unwrap();
    assert_eq!(large.len(), 3);
    let fused = group_and_aggregate(&customers, &["age"], &[("count", AggSpec::Count)]).unwrap();
    assert_eq!(fused.len(), aggregates.len());
}

/// Fig. 5: subdatabase + reduce — the result is a database with the
/// input's schema, holding only participating tuples.
#[test]
fn f5_subdatabase_reduce() {
    let db = retail_db();
    let sub = subdatabase(&db, &["order", "products", "customers"]);
    let reduced = reduce_db(&sub).unwrap();
    assert_eq!(
        reduced.relation("customers").unwrap().len(),
        2,
        "Carol gone"
    );
    assert_eq!(
        reduced.relation("products").unwrap().len(),
        2,
        "webcam gone"
    );
    assert_eq!(reduced.relationship("order").unwrap().len(), 3);
    // normalized: nobody is duplicated
    assert_eq!(reduced.total_tuples(), 7);
}

/// Fig. 6: join along the schema into one denormalized relation function.
#[test]
fn f6_join() {
    let db = retail_db();
    let joined = join(&db).unwrap();
    assert_eq!(joined.len(), 3);
    for (_, t) in joined.tuples().unwrap() {
        assert!(t.has_attr("customers.name"));
        assert!(t.has_attr("products.price"));
        assert!(t.has_attr("order.date"));
    }
}

/// Fig. 7: outer marking returns inner/outer as separate relation
/// functions; no NULLs anywhere.
#[test]
fn f7_generalized_outer_join() {
    let db = retail_db();
    let out = outer(&db, &["products"]).unwrap();
    let sold = out.relation("products.inner").unwrap();
    let unsold = out.relation("products.outer").unwrap();
    assert_eq!(sold.len() + unsold.len(), 3);
    assert_eq!(unsold.len(), 1);
    // every tuple keeps exactly the products schema — nothing padded
    for (_, t) in unsold.tuples().unwrap() {
        let names: Vec<_> = t.attr_names().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["name", "price"]);
    }
}

/// Fig. 8: grouping sets yield one relation function per grouping.
#[test]
fn f8_grouping_sets() {
    let db = retail_db();
    let customers = db.relation("customers").unwrap();
    let gset = grouping_sets(
        &customers,
        &[
            GroupingSpec::new("age_cc", &["age"], &[("count", AggSpec::Count)]),
            GroupingSpec::new(
                "age_name_cc",
                &["age", "name"],
                &[("count", AggSpec::Count)],
            ),
            GroupingSpec::new("global_min", &[], &[("min", AggSpec::Min("age".into()))]),
        ],
    )
    .unwrap();
    assert_eq!(gset.len(), 3);
    assert_eq!(gset.relation("age_cc").unwrap().len(), 3);
    assert_eq!(gset.relation("age_name_cc").unwrap().len(), 3);
    assert_eq!(
        gset.relation("global_min")
            .unwrap()
            .lookup(&Value::Int(0))
            .unwrap()
            .get("min")
            .unwrap(),
        Value::Int(30)
    );
}

/// Fig. 9: set operations on whole databases.
#[test]
fn f9_database_set_operations() {
    let db = retail_db();
    let copy = deep_copy(&db).unwrap();
    assert!(difference(&db, &copy).unwrap().is_empty());

    let changed = db_upsert(
        &copy,
        "customers",
        Value::Int(9),
        TupleF::builder("c")
            .attr("name", "Zoe")
            .attr("age", 21)
            .build(),
    )
    .unwrap();
    let diff = difference(&db, &changed).unwrap();
    assert_eq!(diff.relation("customers.added").unwrap().len(), 1);
    assert!(!diff.contains("customers.removed"));
    assert_eq!(
        union(&db, &changed)
            .unwrap()
            .relation("customers")
            .unwrap()
            .len(),
        4
    );
    assert_eq!(
        intersect(&db, &changed)
            .unwrap()
            .relation("customers")
            .unwrap()
            .len(),
        3
    );
    assert_eq!(
        minus(&changed, &db)
            .unwrap()
            .relation("customers")
            .unwrap()
            .len(),
        1
    );
}

/// Fig. 10: inserts, updates, deletes; immediate application; no save().
#[test]
fn f10_change_operations() {
    let db = retail_db();
    let db = db_upsert(
        &db,
        "customers",
        Value::Int(7),
        TupleF::builder("t")
            .attr("name", "Tom")
            .attr("age", 42)
            .build(),
    )
    .unwrap();
    let (db, key) = db_add(
        &db,
        "customers",
        TupleF::builder("t")
            .attr("name", "Stephen")
            .attr("age", 28)
            .build(),
    )
    .unwrap();
    assert_eq!(key, Value::Int(8));
    let db = db_update_attr(&db, "customers", &Value::Int(7), "age", 50).unwrap();
    let db = db_delete(&db, "customers", &Value::Int(8)).unwrap();
    let c = db.relation("customers").unwrap();
    assert_eq!(c.len(), 4);
    assert_eq!(
        c.lookup(&Value::Int(7)).unwrap().get("age").unwrap(),
        Value::Int(50)
    );
}

/// Fig. 11: the transfer under begin/commit with snapshot semantics.
#[test]
fn f11_transaction() {
    let accounts = RelationF::new("accounts", &["id"])
        .insert(
            Value::Int(42),
            TupleF::builder("a").attr("balance", 1000).build(),
        )
        .unwrap()
        .insert(
            Value::Int(84),
            TupleF::builder("a").attr("balance", 500).build(),
        )
        .unwrap();
    let store = Store::new(DatabaseF::new("bank").with_relation(accounts));
    let mut txn = store.begin();
    txn.modify_attr("accounts", &Value::Int(42), "balance", |v| {
        v.sub(&Value::Int(100))
    })
    .unwrap();
    txn.modify_attr("accounts", &Value::Int(84), "balance", |v| {
        v.add(&Value::Int(100))
    })
    .unwrap();
    txn.commit().unwrap();
    let db = store.snapshot();
    let rel = db.relation("accounts").unwrap();
    assert_eq!(
        rel.lookup(&Value::Int(42)).unwrap().get("balance").unwrap(),
        Value::Int(900)
    );
    assert_eq!(
        rel.lookup(&Value::Int(84)).unwrap().get("balance").unwrap(),
        Value::Int(600)
    );
}

/// Contribution 10: the injection payload that owns the spliced-SQL
/// baseline is inert in FQL.
#[test]
fn c10_injection_contrast() {
    use fdm_relational::{Catalog, Cell, Relation, Schema};
    let mut users = Relation::new("users", Schema::new(&["id", "name", "secret"]));
    users.push(vec![Cell::Int(1), Cell::str("alice"), Cell::str("s1")]);
    users.push(vec![Cell::Int(2), Cell::str("bob"), Cell::str("s2")]);
    let mut catalog = Catalog::new();
    catalog.register(users);
    let payload = "' OR '1'='1";
    let sql_result = catalog
        .query_where_name_equals_spliced("users", payload)
        .unwrap();
    assert_eq!(sql_result.len(), 2, "spliced SQL is owned");

    let users_fdm = RelationF::new("users", &["id"])
        .insert(
            Value::Int(1),
            TupleF::builder("u").attr("name", "alice").build(),
        )
        .unwrap()
        .insert(
            Value::Int(2),
            TupleF::builder("u").attr("name", "bob").build(),
        )
        .unwrap();
    let fql_result =
        filter_expr(&users_fdm, "name == $n", Params::new().set("n", payload)).unwrap();
    assert_eq!(fql_result.len(), 0, "FQL treats the payload as data");
}

/// §2.6: blurring the lines — nested tuples, relations in tuples, tuples
/// as database entries.
#[test]
fn s26_blurring_the_lines() {
    let t1 = TupleF::builder("t1")
        .attr("name", "Alice")
        .attr("foo", 12)
        .build();
    // t3('foo') = t1 — a higher-order tuple
    let t3 = TupleF::builder("t3")
        .attr("name", "Bob")
        .function("foo", t1)
        .build();
    let nested = t3.get("foo").unwrap();
    let inner = nested.as_fn("nested").unwrap().as_tuple().unwrap();
    assert_eq!(inner.get("foo").unwrap(), Value::Int(12));

    // t5('foo') = R — a relation nested in a tuple
    let r = RelationF::new("R", &["k"])
        .insert(Value::Int(1), TupleF::builder("x").attr("v", 9).build())
        .unwrap();
    let t5 = TupleF::builder("t5")
        .attr("name", "Tom")
        .function("foo", r)
        .build();
    let rel_v = t5.get("foo").unwrap();
    let rel = rel_v.as_fn("rel").unwrap().as_relation().unwrap();
    assert_eq!(
        rel.lookup(&Value::Int(1)).unwrap().get("v").unwrap(),
        Value::Int(9)
    );

    // and t5 can be promoted into a database's codomain
    let db = DatabaseF::new("DB").with_entry("myTab", FnValue::from(t5));
    assert!(db.entry("myTab").unwrap().as_tuple().is_ok());
}

/// §4.4: in-place assignment of arbitrary FQL expressions, dynamic vs
/// materialized.
#[test]
fn s44_views() {
    use fdm_fql::{materialize_view, DynamicView, Query};
    let db = retail_db();
    let view = DynamicView::new(
        "oldies",
        Query::scan("customers").filter("age > $a", Params::new().set("a", 42)),
    );
    assert_eq!(view.eval(&db).unwrap().len(), 2);
    let db_m = materialize_view(&db, &view).unwrap();
    assert_eq!(db_m.relation("oldies").unwrap().len(), 2);
}
