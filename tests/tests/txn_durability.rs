//! Crash-recovery equivalence: for **every** injected crash point, a
//! durable store recovers to exactly a prefix of its committed history —
//! never losing an acknowledged (fsynced) commit, never inventing state.
//!
//! Two harnesses drive this:
//!
//! 1. **Exhaustive byte sweep** — a finished WAL is truncated at *every*
//!    byte offset `k`; each truncated copy must open cleanly to some
//!    committed version `v`, monotone in `k`, and the recovered state
//!    must be byte-identical (empty Fig. 9 `difference`) to replaying
//!    the first `v` commits through a fresh **in-memory** store. The
//!    durable path and the volatile path must be the same function.
//! 2. **`CrashPlan` fault injection** — torn writes, bit flips,
//!    duplicated tail records, dropped fsyncs, and a crash mid-checkpoint
//!    are injected at the I/O layer while the store is live, then the
//!    directory is reopened like a rebooted machine.
//!
//! The restart stress test honors `THREADS` (default 4) and keeps its
//! scratch directory on failure so CI can upload the WAL/checkpoint
//! files as artifacts. Set `FDM_DURABILITY_SCRATCH` to pin where the
//! scratch directories live.

use fdm_core::{DatabaseF, FdmError, RelationF, TupleF, Value};
use fdm_fql::difference;
use fdm_txn::{CrashPlan, DurabilityConfig, DurabilityError, Store, StoreConfig};
use fdm_workload::{run_restart_cycles, MixedConfig, RetailConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn threads() -> usize {
    std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4)
}

/// Scratch directory for one test. Honors `FDM_DURABILITY_SCRATCH` so CI
/// can collect the WAL/checkpoint files of a failed run as artifacts —
/// tests remove the directory only on success.
fn scratch(tag: &str) -> PathBuf {
    let base = std::env::var("FDM_DURABILITY_SCRATCH")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let dir = base.join(format!("fdm-dur-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ledger_db() -> DatabaseF {
    DatabaseF::new("ledger").with_relation(RelationF::new("kv", &["k"]))
}

/// The deterministic op for commit `i`: upsert key `(i % 3) + 1` with
/// `v = i`. Keys collide across commits, so recovery must preserve
/// *order*, not just membership.
fn apply_op(txn: &mut fdm_txn::Transaction, i: i64) -> fdm_core::Result<()> {
    txn.upsert(
        "kv",
        Value::Int((i % 3) + 1),
        TupleF::builder(format!("t{i}")).attr("v", i).build(),
    )
}

fn commit(store: &Arc<Store>, i: i64) -> fdm_core::Result<()> {
    store.run(|txn| apply_op(txn, i)).map(|_| ())
}

/// `expected[v]` = the state after replaying commits `1..=v` through a
/// fresh in-memory store — the reference the durable path must match.
fn expected_states(n: i64) -> Vec<DatabaseF> {
    let store = Store::new(ledger_db());
    let mut states = vec![store.snapshot()];
    for i in 1..=n {
        commit(&store, i).unwrap();
        states.push(store.snapshot());
    }
    states
}

/// Asserts the Fig. 9 `difference` between the two databases is empty.
fn assert_state_matches(expected: &DatabaseF, recovered: &DatabaseF, ctx: &str) {
    let diff = difference(expected, recovered).unwrap();
    let leftovers: Vec<String> = diff.iter().map(|(n, _)| n.as_ref().to_string()).collect();
    assert!(
        leftovers.is_empty(),
        "{ctx}: recovered state diverges from in-memory replay: {leftovers:?}"
    );
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|s| s.to_str()) == Some("seg")).then_some(p)
        })
        .collect();
    segs.sort();
    segs
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

fn durable_cfg(dir: &Path) -> StoreConfig {
    StoreConfig {
        durability: Some(DurabilityConfig::new(dir)),
        ..StoreConfig::default()
    }
}

/// Satellite: the exhaustive crash-point sweep. Every byte-truncation of
/// the WAL must recover a committed prefix equal to the in-memory replay.
#[test]
fn every_wal_truncation_point_recovers_exactly_a_committed_prefix() {
    const N: i64 = 6;
    let dir = scratch("sweep");
    let store = Store::create(ledger_db(), durable_cfg(&dir)).unwrap();
    for i in 1..=N {
        commit(&store, i).unwrap();
    }
    drop(store);

    let segs = wal_segments(&dir);
    assert_eq!(segs.len(), 1, "small log fits one segment");
    let full = std::fs::read(&segs[0]).unwrap();
    let seg_name = segs[0].file_name().unwrap().to_owned();
    let expected = expected_states(N);

    let crash_dir = scratch("sweep-crash");
    let mut prev_version = 0u64;
    for k in 0..=full.len() {
        copy_dir(&dir, &crash_dir);
        std::fs::write(crash_dir.join(&seg_name), &full[..k]).unwrap();
        let back = Store::open(&crash_dir)
            .unwrap_or_else(|e| panic!("cut at byte {k}: open must succeed, got {e}"));
        let v = back.version();
        assert!(v <= N as u64, "cut at byte {k}: version {v} beyond history");
        assert!(
            v >= prev_version,
            "cut at byte {k}: recovered {v} < {prev_version} from a shorter prefix — \
             a complete record was lost"
        );
        assert_state_matches(
            &expected[v as usize],
            &back.snapshot(),
            &format!("cut at byte {k} (recovered v{v})"),
        );
        prev_version = v;
    }
    assert_eq!(
        prev_version, N as u64,
        "the untruncated log recovers everything"
    );
    let _ = std::fs::remove_dir_all(&crash_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn write injected while the store is live: the commit that hits
/// the cut fails, every *acknowledged* commit survives the reboot.
#[test]
fn torn_write_mid_commit_never_loses_an_acknowledged_commit() {
    let dir = scratch("cut");
    let store = Store::create(ledger_db(), durable_cfg(&dir)).unwrap();
    let plan = CrashPlan::new();
    store.install_crash_plan(Arc::clone(&plan));

    commit(&store, 1).unwrap();
    let record_bytes = plan.written_bytes();
    assert!(record_bytes > 0, "the WAL append went through the plan");
    // cut mid-way through the 4th record
    plan.cut_write_at(record_bytes * 3 + record_bytes / 2);

    let mut acked = 1u64;
    let mut attempted = 1u64;
    for i in 2..=8 {
        attempted = i as u64;
        match commit(&store, i) {
            Ok(()) => acked = i as u64,
            Err(e) => {
                assert!(
                    matches!(e, FdmError::Durability { .. }),
                    "the torn append must surface as a durability error: {e}"
                );
                break;
            }
        }
    }
    assert_eq!(acked, 3, "commits 2 and 3 land, commit 4 hits the cut");
    assert_eq!(plan.cuts_fired.load(Ordering::SeqCst), 1);
    drop(store);

    let back = Store::open(&dir).unwrap();
    let v = back.version();
    assert!(
        v >= acked && v < attempted,
        "recovery must keep every acked commit ({acked}) and cannot resurrect \
         the torn one ({attempted}): got {v}"
    );
    assert_state_matches(
        &expected_states(v as i64)[v as usize],
        &back.snapshot(),
        "after torn-write reboot",
    );
    // the store is live again: new commits continue the version sequence
    commit(&back, 99).unwrap();
    assert_eq!(back.version(), v + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flip in an early record (valid data follows it) is media
/// corruption: recovery must refuse with a typed error rather than
/// silently truncating acknowledged commits away.
#[test]
fn bit_flip_in_the_log_is_a_hard_error_not_silent_truncation() {
    let dir = scratch("flip");
    let store = Store::create(ledger_db(), durable_cfg(&dir)).unwrap();
    let plan = CrashPlan::new();
    store.install_crash_plan(Arc::clone(&plan));
    // offset 12 = inside the first record's payload (8-byte record header,
    // then the version word); the flip lands while record 1 is written
    plan.flip_bit_at(12, 2);
    for i in 1..=3 {
        commit(&store, i).unwrap();
    }
    assert_eq!(plan.flips_fired.load(Ordering::SeqCst), 1);
    drop(store);

    match Store::open(&dir) {
        Err(DurabilityError::ChecksumMismatch { file, offset }) => {
            assert!(file.ends_with(".seg"), "names the damaged segment: {file}");
            assert_eq!(offset, 8, "record 1 starts right after the segment magic");
        }
        Err(e) => panic!("expected ChecksumMismatch, got {e}"),
        Ok(_) => panic!("mid-log corruption must not open cleanly"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A duplicated tail record (a retried append racing a crash) is a legal
/// artifact: recovery deduplicates by version.
#[test]
fn duplicated_tail_record_is_deduplicated_on_reopen() {
    let dir = scratch("dup");
    let store = Store::create(ledger_db(), durable_cfg(&dir)).unwrap();
    let plan = CrashPlan::new();
    store.install_crash_plan(Arc::clone(&plan));
    commit(&store, 1).unwrap();
    commit(&store, 2).unwrap();
    plan.duplicate_tail_record();
    commit(&store, 3).unwrap();
    assert_eq!(plan.dups_fired.load(Ordering::SeqCst), 1);
    drop(store);

    let back = Store::open(&dir).unwrap();
    assert_eq!(back.version(), 3, "the duplicate collapses to one commit");
    let report = back.verify_integrity().unwrap();
    assert_eq!(report.replay_to, 3);
    assert_state_matches(&expected_states(3)[3], &back.snapshot(), "after dup reboot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lying fsyncs: the writer believes its commits are durable while the
/// medium lags. Power loss (truncation to the true durable boundary)
/// must still recover everything *below* that boundary.
#[test]
fn dropped_fsyncs_recovery_honors_the_true_durable_boundary() {
    let dir = scratch("dropfsync");
    let store = Store::create(ledger_db(), durable_cfg(&dir)).unwrap();
    let plan = CrashPlan::new();
    store.install_crash_plan(Arc::clone(&plan));
    for i in 1..=3 {
        commit(&store, i).unwrap();
    }
    let durable = plan.durable_bytes();
    plan.drop_fsync();
    for i in 4..=6 {
        commit(&store, i).unwrap(); // acks backed by swallowed fsyncs
    }
    assert!(plan.fsyncs_dropped.load(Ordering::SeqCst) >= 3);
    assert_eq!(plan.durable_bytes(), durable, "boundary frozen at commit 3");
    let written = plan.written_bytes();
    drop(store);

    // power loss: everything past the last *real* fsync evaporates
    let seg = &wal_segments(&dir)[0];
    let file_len = std::fs::metadata(seg).unwrap().len();
    let header = file_len - written; // bytes written before the plan was installed
    let f = std::fs::OpenOptions::new().write(true).open(seg).unwrap();
    f.set_len(header + durable).unwrap();
    drop(f);

    let back = Store::open(&dir).unwrap();
    assert_eq!(
        back.version(),
        3,
        "every commit below the durable boundary survives; the lied-about ones are gone"
    );
    assert_state_matches(&expected_states(3)[3], &back.snapshot(), "after power loss");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash in the middle of writing a checkpoint must not damage the
/// store: the half-written `.tmp` is never renamed, and recovery anchors
/// on the previous checkpoint plus full WAL replay.
#[test]
fn crash_mid_checkpoint_falls_back_to_the_previous_checkpoint() {
    let dir = scratch("midckpt");
    let store = Store::create(ledger_db(), durable_cfg(&dir)).unwrap();
    for i in 1..=4 {
        commit(&store, i).unwrap();
    }
    assert_eq!(store.checkpoint().unwrap(), 4);
    for i in 5..=6 {
        commit(&store, i).unwrap();
    }
    let plan = CrashPlan::new();
    store.install_crash_plan(Arc::clone(&plan));
    plan.cut_write_at(20); // dies 20 bytes into the checkpoint image
    store
        .checkpoint()
        .expect_err("the checkpoint write crashed");
    assert_eq!(plan.cuts_fired.load(Ordering::SeqCst), 1);
    drop(store);

    let back = Store::open(&dir).unwrap();
    assert_eq!(back.version(), 6, "v4 checkpoint + WAL replay of 5 and 6");
    let report = back.verify_integrity().unwrap();
    assert_eq!(report.checkpoint_version, 4);
    assert_state_matches(
        &expected_states(6)[6],
        &back.snapshot(),
        "after mid-checkpoint crash",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI `durability-stress` workload: concurrent writers, repeated
/// kill-and-recover cycles, `THREADS` from the environment. On failure
/// the scratch directory survives for artifact upload.
#[test]
fn restart_stress_recovers_every_cycle_under_concurrency() {
    let dir = scratch("stress");
    let t = threads();
    let mixed = MixedConfig {
        threads: t,
        ops_per_thread: 48 / t.max(1),
        seed: 4242,
        skew: 0.8,
    };
    let reports = run_restart_cycles(&dir, &RetailConfig::small(), &mixed, 4).unwrap();
    assert_eq!(reports.len(), 4);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(
            r.durable, r.committed,
            "cycle {i}: SyncPolicy::Always makes every ack durable"
        );
    }
    for w in reports.windows(2) {
        assert_eq!(
            w[1].recovered, w[0].committed,
            "recovery resumes exactly where the previous cycle was killed"
        );
        assert!(
            w[1].credit > w[0].credit,
            "recovered credit keeps the audit sum"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
