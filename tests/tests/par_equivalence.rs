//! The parallel execution layer must be **observably invisible**: every
//! parallelized FQL operator has to produce byte-identical output (same
//! keys in the same order, same materialized attributes, same errors)
//! whether it runs on one thread or many.
//!
//! Thread count and the sequential cutoff are environment-driven
//! (`THREADS`, `FDM_PAR_CUTOFF` — see `fdm_core::par`), so each check runs
//! the same operator under `THREADS=1` (the sequential path) and
//! `THREADS=4` with a tiny cutoff (the parallel path, forced even on the
//! modest retail workload) and compares fingerprints. CI additionally runs
//! this whole suite under both `THREADS` settings to catch nondeterminism
//! at the process level.

use fdm_core::{DatabaseF, RelationF, Value};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::Query;
use fdm_workload::{generate, to_fdm, RetailConfig};
use std::sync::Mutex;

/// Serializes environment mutation across the test threads of this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the given thread count and a cutoff low enough that the
/// retail workload takes the parallel path, restoring the environment
/// afterwards.
fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved_t = std::env::var("THREADS").ok();
    let saved_c = std::env::var("FDM_PAR_CUTOFF").ok();
    std::env::set_var("THREADS", threads);
    std::env::set_var("FDM_PAR_CUTOFF", "16");
    let out = f();
    match saved_t {
        Some(v) => std::env::set_var("THREADS", v),
        None => std::env::remove_var("THREADS"),
    }
    match saved_c {
        Some(v) => std::env::set_var("FDM_PAR_CUTOFF", v),
        None => std::env::remove_var("FDM_PAR_CUTOFF"),
    }
    out
}

fn shop() -> DatabaseF {
    to_fdm(&generate(&RetailConfig {
        customers: 400,
        products: 60,
        orders: 1500,
        product_skew: 0.8,
        inactive_customers: 0.2,
        seed: 20260730,
    }))
}

/// A relation's full observable content: keys in iteration order, each
/// with the tuple's materialized attributes in stored order (stricter
/// than the bulk_equivalence fingerprint — attribute order must match
/// too).
fn fingerprint(rel: &RelationF) -> Vec<(Value, Vec<(String, Value)>)> {
    rel.tuples()
        .unwrap()
        .into_iter()
        .map(|(k, t)| {
            let attrs: Vec<(String, Value)> = t
                .materialize()
                .unwrap()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
            (k, attrs)
        })
        .collect()
}

/// Runs `op` under `THREADS=1` and `THREADS=4` and asserts byte-identical
/// relation output.
fn assert_par_equal(what: &str, op: impl Fn() -> RelationF) {
    let seq = with_threads("1", &op);
    let par = with_threads("4", &op);
    assert_eq!(seq.len(), par.len(), "{what}: cardinality");
    assert_eq!(
        fingerprint(&seq),
        fingerprint(&par),
        "{what}: keys, order, or tuple data diverge between 1 and 4 threads"
    );
}

#[test]
fn filter_parallel_matches_sequential() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    assert_par_equal("filter_expr", || {
        filter_expr(&customers, "age > $min", Params::new().set("min", 42)).unwrap()
    });
    assert_par_equal("filter_fn empty result", || {
        filter_fn(&customers, |t| {
            Ok(t.get("age").unwrap() > Value::Int(10_000))
        })
        .unwrap()
    });
}

#[test]
fn extend_parallel_matches_sequential() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    assert_par_equal("extend (computed attr)", || {
        extend(&customers, "age_in_months", |t| {
            t.get("age")?.mul(&Value::Int(12))
        })
        .unwrap()
    });
    assert_par_equal("extend_stored", || {
        extend_stored(&customers, "seniority", |t| {
            t.get("age")?.mul(&Value::Int(100))
        })
        .unwrap()
    });
}

#[test]
fn inlined_keys_parallel_matches_sequential() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    assert_par_equal("with_inlined_keys", || {
        fdm_fql::filter::with_inlined_keys(&customers).unwrap()
    });
}

#[test]
fn schema_join_parallel_matches_sequential() {
    let db = shop();
    assert_par_equal("join (schema-driven)", || join(&db).unwrap());
}

#[test]
fn join_on_parallel_matches_sequential() {
    let db = shop();
    let order_rel = db.relationship("order").unwrap().to_relation();
    let db2 = db.with_relation(order_rel.renamed("order_rel"));
    assert_par_equal("join_on (explicit conditions)", || {
        join_on(
            &db2,
            &[
                JoinOn::new("customers", "cid", "order_rel", "cid"),
                JoinOn::new("order_rel", "pid", "products", "pid"),
            ],
        )
        .unwrap()
    });
}

#[test]
fn plan_pipeline_parallel_matches_sequential() {
    let db = shop();
    assert_par_equal("plan scan→filter→project", || {
        Query::scan("customers")
            .filter("age > $min", Params::new().set("min", 30))
            .project(&["name", "age", "cid"])
            .optimize()
            .eval(&db)
            .unwrap()
    });
}

#[test]
fn duplicate_key_error_is_identical() {
    // A multi-body relation (secondary index) enumerates duplicate keys;
    // rebuilding it as a unique relation must fail with the *same*
    // DuplicateKey error on both paths — including duplicates that
    // straddle a chunk boundary.
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let by_age = customers.index_by("age").unwrap();
    let op = || filter_fn(&by_age, |_| Ok(true)).unwrap_err();
    let seq = with_threads("1", op);
    let par = with_threads("4", op);
    assert!(
        matches!(seq, fdm_core::FdmError::DuplicateKey { .. }),
        "sequential path must reject duplicate keys: {seq}"
    );
    assert_eq!(
        seq.to_string(),
        par.to_string(),
        "parallel path must report the same duplicate key"
    );
}

#[test]
fn deep_copy_parallel_matches_sequential() {
    let db = shop();
    // relation granularity: the chunked copy must be byte-identical
    let customers = db.relation("customers").unwrap();
    assert_par_equal("deep_copy_relation", || {
        fdm_fql::deep_copy_relation(&customers).unwrap()
    });
    // database granularity: every relation of the copy agrees
    let seq = with_threads("1", || deep_copy(&db).unwrap());
    let par = with_threads("4", || deep_copy(&db).unwrap());
    for name in ["customers", "products"] {
        assert_eq!(
            fingerprint(&seq.relation(name).unwrap()),
            fingerprint(&par.relation(name).unwrap()),
            "deep_copy diverges on {name}"
        );
    }
}

#[test]
fn group_parallel_matches_sequential() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    // the Groups' underlying multi relation carries keys, member sets,
    // and within-group order — all must match
    assert_par_equal("group by age", || {
        group(&customers, &["age"]).unwrap().as_relation().clone()
    });
    assert_par_equal("group by (state, age)", || {
        group(&customers, &["state", "age"])
            .unwrap()
            .as_relation()
            .clone()
    });
    assert_par_equal("group_fn (decade)", || {
        group_fn(&customers, |t| {
            Ok(Value::Int(t.get("age")?.as_int("age")? / 10))
        })
        .unwrap()
        .as_relation()
        .clone()
    });
}

#[test]
fn aggregate_parallel_matches_sequential() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    assert_par_equal("aggregate over age groups", || {
        let groups = group(&customers, &["age"]).unwrap();
        aggregate(
            &groups,
            &[
                ("count", AggSpec::Count),
                ("min_age", AggSpec::Min("age".into())),
                ("avg_age", AggSpec::Avg("age".into())),
            ],
        )
        .unwrap()
    });
    assert_par_equal("group_and_aggregate (state, age)", || {
        group_and_aggregate(
            &customers,
            &["state", "age"],
            &[("c", AggSpec::Count), ("s", AggSpec::Sum("age".into()))],
        )
        .unwrap()
    });
}

#[test]
fn group_error_is_identical_across_threads() {
    // a missing grouping attribute must surface the same first error on
    // both paths
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let op = || group(&customers, &["nope"]).unwrap_err();
    let seq = with_threads("1", op);
    let par = with_threads("4", op);
    assert_eq!(seq.to_string(), par.to_string());
}

#[test]
fn setops_merge_path_agrees_across_threads() {
    // DB-level setops are merge-based (not thread-chunked), but they sit
    // downstream of parallelized operators; pin the whole pipeline.
    let db = shop();
    let copy = deep_copy(&db).unwrap();
    let diff = with_threads("4", || difference(&db, &copy).unwrap());
    assert!(diff.is_empty(), "identical copies diff to empty: {diff:?}");
    let removed_one = {
        let customers = copy.relation("customers").unwrap();
        let first_key = customers.stored_keys().remove(0);
        let shrunk = customers.delete(&first_key).unwrap();
        copy.with_entry("customers", fdm_core::FnValue::from(shrunk))
    };
    let d1 = with_threads("1", || difference(&db, &removed_one).unwrap());
    let d4 = with_threads("4", || difference(&db, &removed_one).unwrap());
    let r1 = d1.relation("customers.removed").unwrap();
    let r4 = d4.relation("customers.removed").unwrap();
    assert_eq!(r1.len(), 1);
    assert_eq!(fingerprint(&r1), fingerprint(&r4));
}
