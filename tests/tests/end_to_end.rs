//! End-to-end: declare an ER schema, compile to FDM, load generated data
//! through transactions, query with FQL (eager and planned), maintain
//! views, and diff database versions — the full product surface in one
//! flow.

use fdm_core::{FnValue, TupleF, Value};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::{DynamicView, Query};
use fdm_txn::Store;
use fdm_workload::{generate, RetailConfig};

#[test]
fn full_pipeline() {
    // 1. schema: ERM → FDM
    let schema = fdm_erm::retail_schema();
    let empty_db = fdm_erm::compile_to_fdm(&schema);
    let store = Store::new(empty_db);

    // 2. load generated data transactionally
    let data = generate(&RetailConfig {
        customers: 120,
        products: 30,
        orders: 300,
        product_skew: 1.0,
        inactive_customers: 0.2,
        seed: 99,
    });
    let mut txn = store.begin();
    for (cid, name, age, _state) in &data.customers {
        txn.upsert(
            "customers",
            Value::Int(*cid),
            TupleF::builder(format!("c{cid}"))
                .attr("name", name.as_str())
                .attr("age", *age)
                .build(),
        )
        .unwrap();
    }
    for (pid, name, _price, category) in &data.products {
        txn.upsert(
            "products",
            Value::Int(*pid),
            TupleF::builder(format!("p{pid}"))
                .attr("name", name.as_str())
                .attr("category", *category)
                .build(),
        )
        .unwrap();
    }
    // orders through the relationship function (whole-entry assignment)
    let mut order = store
        .snapshot()
        .relationship("order")
        .unwrap()
        .as_ref()
        .clone();
    for (cid, pid, date, _qty) in &data.orders {
        order = order
            .insert(
                &[Value::Int(*cid), Value::Int(*pid)],
                TupleF::builder("o")
                    .attr("name", format!("o_{cid}_{pid}"))
                    .attr("date", date.as_str())
                    .build(),
            )
            .unwrap();
    }
    txn.assign("order", FnValue::from(order)).unwrap();
    let v1 = txn.commit().unwrap();
    assert_eq!(v1, 1);

    let before = store.snapshot();
    assert_eq!(before.relation("customers").unwrap().len(), 120);
    assert_eq!(
        before.relationship("order").unwrap().len(),
        data.orders.len()
    );

    // 3. query eagerly: the Fig. 5/6/7 trio
    let joined = join(&before).unwrap();
    assert_eq!(joined.len(), data.orders.len());
    let reduced = reduce_db(&before).unwrap();
    assert!(reduced.relation("customers").unwrap().len() <= 120);
    let o = outer(&before, &["products"]).unwrap();
    assert_eq!(
        o.relation("products.inner").unwrap().len() + o.relation("products.outer").unwrap().len(),
        30
    );

    // 4. query via plans with optimization
    let q = Query::scan("customers")
        .filter("age >= $a", Params::new().set("a", 60))
        .project(&["name", "age"]);
    let opt = q.clone().optimize();
    assert_eq!(
        q.eval(&before).unwrap().len(),
        opt.eval(&before).unwrap().len()
    );

    // 5. a dynamic view stays fresh across commits
    let view = DynamicView::new(
        "seniors",
        Query::scan("customers").filter("age >= $a", Params::new().set("a", 60)),
    );
    let seniors_before = view.eval(&store.snapshot()).unwrap().len();
    store
        .upsert_one(
            "customers",
            Value::Int(9999),
            TupleF::builder("c")
                .attr("name", "Methuselah")
                .attr("age", 77)
                .build(),
        )
        .unwrap();
    let seniors_after = view.eval(&store.snapshot()).unwrap().len();
    assert_eq!(seniors_after, seniors_before + 1);

    // 6. the differential database between the two versions shows exactly
    //    the one added customer
    let after = store.snapshot();
    let diff = difference(&before, &after).unwrap();
    let added = diff.relation("customers.added").unwrap();
    assert_eq!(added.len(), 1);
    let (_, t) = added.tuples().unwrap().remove(0);
    assert_eq!(t.get("name").unwrap(), Value::str("Methuselah"));
    assert!(!diff.contains("products.added"));
}

#[test]
fn queries_inside_transactions_see_their_own_writes() {
    let schema = fdm_erm::retail_schema();
    let store = Store::new(fdm_erm::compile_to_fdm(&schema));
    let mut txn = store.begin();
    for i in 0..10 {
        txn.upsert(
            "customers",
            Value::Int(i),
            TupleF::builder("c")
                .attr("name", format!("c{i}"))
                .attr("age", 20 + i)
                .build(),
        )
        .unwrap();
    }
    // run a full FQL query against the transaction's own view
    let result = filter_expr(
        txn.db().relation("customers").unwrap().as_ref(),
        "age >= $a",
        Params::new().set("a", 25),
    )
    .unwrap();
    assert_eq!(result.len(), 5);
    txn.rollback();
    assert_eq!(store.snapshot().relation("customers").unwrap().len(), 0);
}

#[test]
fn erm_constraints_survive_the_pipeline() {
    let store = Store::new(fdm_erm::compile_to_fdm(&fdm_erm::retail_schema()));
    let mut txn = store.begin();
    // age must be an int per the ER declaration
    let err = txn.upsert(
        "customers",
        Value::Int(1),
        TupleF::builder("c")
            .attr("name", "x")
            .attr("age", "NaN")
            .build(),
    );
    assert!(err.is_err());
    txn.rollback();
}
