//! Property-based differential oracle for key-range sharding
//! (`fdm_core::shard`): random shard-boundary layouts crossed with random
//! mutation streams, checked against the unsharded relation after every
//! step. Boundary keys get no benefit of the doubt — every generated
//! layout is probed *exactly at* each boundary (and one off on both
//! sides), because the routing contract ("a key equal to a boundary opens
//! the shard to its right") is precisely where an off-by-one would hide.
//!
//! Three properties:
//!
//! * **mutation streams** — replaying the same upsert/delete stream
//!   through a `ShardedRelation` and a plain `RelationF` keeps them
//!   canonically identical at every step, whatever the layout;
//! * **reads** — point lookups and range scans (bounded, half-open, and
//!   pinned to boundaries) agree key-for-key and tuple-for-tuple;
//! * **joins** — FQL joins and per-shard semijoins over the sharded data
//!   answer exactly like the unsharded relation.

use fdm_core::{RelationF, ShardMap, ShardedRelation, TupleF, Value};
use fdm_fql::{join_on, semijoin, JoinOn};
use fdm_tests::canonical_rows;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Keys live in `0..KEY_SPACE`; boundaries are drawn from the same space
/// so layouts routinely land exactly on stored keys.
const KEY_SPACE: i64 = 240;

fn tuple(key: i64, val: i64) -> TupleF {
    TupleF::builder("t")
        .attr("group", key % 7)
        .attr("val", val)
        .build()
}

fn base_relation(keys: &BTreeSet<i64>) -> RelationF {
    RelationF::from_sorted(
        "r",
        &["k"],
        keys.iter()
            .map(|&k| (Value::Int(k), Arc::new(tuple(k, k * 3))))
            .collect(),
    )
}

fn shard_map(raw: &BTreeSet<i64>) -> ShardMap {
    ShardMap::new(raw.iter().map(|&b| Value::Int(b)).collect())
        .expect("BTreeSet boundaries are strictly ascending")
}

/// Canonical equality of a sharded relation against its unsharded model,
/// via the merge bridge (`to_relation`) — same rows, same order.
fn assert_same(sharded: &ShardedRelation, model: &RelationF, context: &str) {
    assert_eq!(sharded.len(), model.len(), "{context}: length diverged");
    assert_eq!(
        canonical_rows(&sharded.to_relation()),
        canonical_rows(model),
        "{context}: canonical rows diverged"
    );
}

/// Every probe point a layout makes interesting: each boundary exactly,
/// one key either side of it, plus the key-space edges.
fn probe_keys(map: &ShardMap) -> Vec<i64> {
    let mut probes = vec![-1, 0, KEY_SPACE - 1, KEY_SPACE];
    for b in map.boundaries() {
        let b = b.as_int("k").expect("int boundaries");
        probes.extend([b - 1, b, b + 1]);
    }
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random layout × random mutation stream: the sharded relation and
    /// the flat model stay canonically identical after **every** step,
    /// and absent-key deletes fail identically on both sides.
    #[test]
    fn mutation_streams_preserve_equivalence(
        keys in prop::collection::btree_set(0i64..KEY_SPACE, 10..60),
        raw_bounds in prop::collection::btree_set(0i64..KEY_SPACE, 0..8),
        ops in prop::collection::vec((0u8..2, 0i64..KEY_SPACE, 0i64..1_000), 0..40),
    ) {
        let mut model = base_relation(&keys);
        let map = shard_map(&raw_bounds);
        let mut sharded = ShardedRelation::from_relation(&model, map.clone()).unwrap();
        assert_same(&sharded, &model, "initial split");

        // the generated stream, then a forced pass across every boundary
        // key (upsert onto the boundary, then delete it again) so each
        // layout's routing edge is mutated, not just read
        let mut stream: Vec<(u8, i64, i64)> = ops;
        for b in map.boundaries() {
            let b = b.as_int("k").unwrap();
            stream.push((0, b, b * 11));
            stream.push((1, b, 0));
        }

        for (step, (op, key, val)) in stream.into_iter().enumerate() {
            let k = Value::Int(key);
            match op {
                0 => {
                    sharded = sharded.upsert(k.clone(), tuple(key, val)).unwrap();
                    model = model.upsert(k, tuple(key, val)).unwrap();
                }
                _ => {
                    let a = sharded.delete(&k);
                    let b = model.delete(&k);
                    prop_assert_eq!(
                        a.is_ok(), b.is_ok(),
                        "step {}: delete({}) outcome diverged", step, key
                    );
                    if let (Ok(s), Ok(m)) = (a, b) {
                        sharded = s;
                        model = m;
                    }
                }
            }
            assert_same(&sharded, &model, &format!("after step {step}"));
        }
    }

    /// Point reads and range scans agree with the flat model — including
    /// probes pinned exactly to every shard boundary and scans whose
    /// bounds *are* boundary keys (empty, single-key, and straddling).
    #[test]
    fn reads_agree_at_and_around_boundaries(
        keys in prop::collection::btree_set(0i64..KEY_SPACE, 10..80),
        raw_bounds in prop::collection::btree_set(0i64..KEY_SPACE, 0..8),
        scans in prop::collection::vec((0i64..KEY_SPACE, 0i64..40), 0..12),
    ) {
        let model = base_relation(&keys);
        let map = shard_map(&raw_bounds);
        let sharded = ShardedRelation::from_relation(&model, map.clone()).unwrap();

        for key in probe_keys(&map) {
            let k = Value::Int(key);
            match (sharded.lookup(&k), model.lookup(&k)) {
                (Some(a), Some(b)) => prop_assert!(
                    Arc::ptr_eq(&a, &b),
                    "lookup({}) returned a different tuple", key
                ),
                (None, None) => {}
                (a, b) => prop_assert!(
                    false,
                    "lookup({}): sharded {:?} vs model {:?}", key, a.is_some(), b.is_some()
                ),
            }
            prop_assert_eq!(sharded.contains_key(&k), model.contains_key(&k));
        }

        // generated scans, plus scans whose bounds sit exactly on each
        // boundary: [b, b], [b-1, b], [b, b+7], and the half-open sides
        let mut ranges: Vec<(Option<i64>, Option<i64>)> = scans
            .into_iter()
            .map(|(lo, len)| (Some(lo), Some(lo + len)))
            .collect();
        ranges.push((None, None));
        for b in map.boundaries() {
            let b = b.as_int("k").unwrap();
            ranges.extend([
                (Some(b), Some(b)),
                (Some(b - 1), Some(b)),
                (Some(b), Some(b + 7)),
                (None, Some(b)),
                (Some(b), None),
            ]);
        }
        for (lo, hi) in ranges {
            let lo = lo.map(Value::Int);
            let hi = hi.map(Value::Int);
            let got = sharded.range(lo.as_ref(), hi.as_ref());
            let want = model.range(lo.as_ref(), hi.as_ref());
            prop_assert_eq!(
                got.len(), want.len(),
                "range {:?}..={:?} cardinality diverged", lo, hi
            );
            for ((gk, gt), (wk, wt)) in got.iter().zip(want.iter()) {
                prop_assert_eq!(gk, wk, "range {:?}..={:?} key order", &lo, &hi);
                prop_assert!(Arc::ptr_eq(gt, wt), "range tuple for key {:?}", gk);
            }
        }
    }

    /// Joins see no difference: an FQL `join_on` against a dimension
    /// relation answers identically over the merged sharded data, and a
    /// per-shard semijoin (`map_shards`) equals the flat semijoin.
    #[test]
    fn joins_over_sharded_equal_unsharded(
        keys in prop::collection::btree_set(0i64..KEY_SPACE, 10..60),
        raw_bounds in prop::collection::btree_set(0i64..KEY_SPACE, 1..8),
        picked in prop::collection::btree_set(0i64..7, 1..5),
    ) {
        let model = base_relation(&keys);
        let map = shard_map(&raw_bounds);
        let sharded = ShardedRelation::from_relation(&model, map).unwrap();

        // dimension table keyed by the fact relation's `group` attribute
        let dim = RelationF::from_sorted(
            "groups",
            &["gid"],
            (0..7)
                .map(|g| {
                    (
                        Value::Int(g),
                        Arc::new(TupleF::builder("g").attr("label", format!("g{g}")).build()),
                    )
                })
                .collect(),
        );
        let db_of = |facts: RelationF| {
            fdm_core::DatabaseF::new("db")
                .with_relation(facts)
                .with_relation(dim.clone())
        };
        let on = [JoinOn::new("r", "group", "groups", "gid")];
        let flat = join_on(&db_of(model.clone()), &on).unwrap();
        let merged = join_on(&db_of(sharded.to_relation()), &on).unwrap();
        prop_assert_eq!(
            canonical_rows(&flat),
            canonical_rows(&merged),
            "join_on diverged over the shard merge bridge"
        );

        // semijoin pushed inside each shard vs run flat
        let group_keys: BTreeSet<Value> = picked.into_iter().map(Value::Int).collect();
        let per_shard = sharded
            .map_shards(|shard| semijoin(shard, "group", &group_keys))
            .unwrap();
        let flat_semi = semijoin(&model, "group", &group_keys).unwrap();
        prop_assert_eq!(
            canonical_rows(&per_shard.to_relation()),
            canonical_rows(&flat_semi),
            "per-shard semijoin diverged from the flat semijoin"
        );
    }
}
