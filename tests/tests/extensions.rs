//! Integration tests for the beyond-the-figures extensions: the scalar
//! function library in FQL filters (contribution 8), order/limit in lazy
//! plans, time-travel history, and operator composition across crates.

use fdm_core::{TupleF, Value};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::Query;
use fdm_txn::{History, Store};
use fdm_workload::{generate, to_fdm, RetailConfig};
use std::sync::Arc;

#[test]
fn scalar_functions_inside_fql_filters() {
    let db = to_fdm(&generate(&RetailConfig::small()));
    let customers = db.relation("customers").unwrap();
    // contribution 8: library functions straight in the textual costume
    let shouty = filter_expr(
        &customers,
        "starts_with(name, $p) and len(name) > 9",
        Params::new().set("p", "customer_1"),
    )
    .unwrap();
    for (_, t) in shouty.tuples().unwrap() {
        let name = t.get("name").unwrap();
        let s = name.as_str("name").unwrap().to_string();
        assert!(s.starts_with("customer_1") && s.chars().count() > 9);
    }
    // upper/lower roundtrip as a predicate
    let all = filter_expr(
        &customers,
        "lower(upper(state)) == lower(state)",
        Params::new(),
    )
    .unwrap();
    assert_eq!(all.len(), customers.len());
}

#[test]
fn top_k_pipeline_across_engines() {
    let db = to_fdm(&generate(&RetailConfig {
        customers: 300,
        products: 40,
        orders: 900,
        product_skew: 1.2,
        inactive_customers: 0.1,
        seed: 5,
    }));
    // top-3 customers by order count: join → group → aggregate → top_k
    let joined = join(&db).unwrap();
    let per_customer =
        group_and_aggregate(&joined, &["customers.cid"], &[("orders", AggSpec::Count)]).unwrap();
    let top3 = top_k(&per_customer, "orders", Order::Desc, 3).unwrap();
    assert_eq!(top3.len(), 3);
    let counts: Vec<i64> = top3
        .tuples()
        .unwrap()
        .iter()
        .map(|(_, t)| t.get("orders").unwrap().as_int("n").unwrap())
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] >= w[1]),
        "descending: {counts:?}"
    );
    // cross-check the winner against a manual count
    let max_manual = per_customer
        .tuples()
        .unwrap()
        .iter()
        .map(|(_, t)| t.get("orders").unwrap().as_int("n").unwrap())
        .max()
        .unwrap();
    assert_eq!(counts[0], max_manual);
}

#[test]
fn plan_with_order_and_limit() {
    let db = to_fdm(&generate(&RetailConfig::small()));
    let q = Query::scan("customers")
        .filter("age >= $a", Params::new().set("a", 30))
        .order_by("age", Order::Desc)
        .limit(5);
    let out = q.clone().optimize().eval(&db).unwrap();
    assert!(out.len() <= 5);
    let ages: Vec<i64> = out
        .tuples()
        .unwrap()
        .iter()
        .map(|(_, t)| t.get("age").unwrap().as_int("age").unwrap())
        .collect();
    assert!(ages.windows(2).all(|w| w[0] >= w[1]));
    assert!(ages.iter().all(|a| *a >= 30));
    // optimized and declared agree exactly
    let naive = q.eval(&db).unwrap();
    assert_eq!(naive.stored_keys(), out.stored_keys());
}

#[test]
fn history_supports_as_of_queries_after_churn() {
    let db = to_fdm(&generate(&RetailConfig::small()));
    let store = Store::new(db);
    let history = Arc::new(History::new(32));
    history.record(store.version(), store.snapshot());

    let mut sizes = vec![store.snapshot().relation("customers").unwrap().len()];
    for i in 0..10i64 {
        let mut txn = store.begin();
        txn.upsert(
            "customers",
            Value::Int(10_000 + i),
            TupleF::builder("c")
                .attr("name", format!("late_{i}"))
                .attr("age", 20 + i)
                .attr("state", "NV")
                .build(),
        )
        .unwrap();
        let v = txn.commit().unwrap();
        history.record(v, store.snapshot());
        sizes.push(store.snapshot().relation("customers").unwrap().len());
    }
    // each recorded version reflects exactly its commit point
    for (i, &size) in sizes.iter().enumerate() {
        let past = history.as_of(i as u64).unwrap();
        assert_eq!(
            past.relation("customers").unwrap().len(),
            size,
            "version {i}"
        );
    }
    // a full FQL query against an old version
    let v3 = history.as_of(3).unwrap();
    let nv = filter_expr(
        v3.relation("customers").unwrap().as_ref(),
        "state == $s",
        Params::new().set("s", "NV"),
    )
    .unwrap();
    assert_eq!(nv.len(), 3);
}

#[test]
fn rename_then_join_on_renamed_attribute() {
    let db = to_fdm(&generate(&RetailConfig::small()));
    let customers = db.relation("customers").unwrap();
    let renamed = rename_attrs(&customers, &[("name", "customer_name")]).unwrap();
    let db2 = db.with_entry("customers2", fdm_core::FnValue::from(renamed));
    let q = Query::scan("customers2").filter("len(customer_name) > 0", Params::new());
    let out = q.eval(&db2).unwrap();
    assert_eq!(out.len(), customers.len());
}

#[test]
fn extend_composes_with_group_and_aggregate() {
    let db = to_fdm(&generate(&RetailConfig::small()));
    let customers = db.relation("customers").unwrap();
    // derive an age decade, then group by it — derived attributes are
    // full citizens (stored vs computed is invisible)
    let with_decade = extend_stored(&customers, "decade", |t| {
        let age = t.get("age")?.as_int("age")?;
        Ok(Value::Int(age / 10 * 10))
    })
    .unwrap();
    let by_decade =
        group_and_aggregate(&with_decade, &["decade"], &[("n", AggSpec::Count)]).unwrap();
    let total: i64 = by_decade
        .tuples()
        .unwrap()
        .iter()
        .map(|(_, t)| t.get("n").unwrap().as_int("n").unwrap())
        .sum();
    assert_eq!(total as usize, customers.len());
}
