//! Time-travel history: replay round-trips, compaction windows, and a
//! property test that interleaved commit logs always replay to the live
//! root.

use fdm_core::{DatabaseF, Value};
use fdm_fql::{db_upsert, difference};
use fdm_txn::Store;
use fdm_workload::{retail_store, run_writers, CommitRecord, MixedConfig, RetailConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn credit_of(db: &DatabaseF, cid: i64) -> i64 {
    db.relation("customers")
        .unwrap()
        .lookup(&Value::Int(cid))
        .unwrap()
        .get("credit")
        .unwrap()
        .as_int("credit")
        .unwrap()
}

fn replay_all(base: &DatabaseF, records: &[CommitRecord]) -> DatabaseF {
    let mut sorted: Vec<&CommitRecord> = records.iter().collect();
    sorted.sort_unstable_by_key(|r| r.version);
    let mut db = base.clone();
    for r in sorted {
        let key = Value::Int(r.op.customer);
        let old = credit_of(&db, r.op.customer);
        let t = db
            .relation("customers")
            .unwrap()
            .lookup(&key)
            .unwrap()
            .with_attr("credit", old + r.op.delta);
        db = db_upsert(&db, "customers", key, t).unwrap();
    }
    db
}

#[test]
fn as_of_round_trips_every_sequentially_committed_version() {
    let store = retail_store(&RetailConfig::small());
    // ten sequential commits, each changing one customer's credit
    let mut expected: Vec<DatabaseF> = vec![store.as_of(0).unwrap()];
    for i in 1..=10i64 {
        store
            .run(|txn| txn.update_attr("customers", &Value::Int(i % 5 + 1), "credit", i))
            .unwrap();
        expected.push(store.snapshot());
    }
    for (v, want) in expected.iter().enumerate() {
        let got = store.as_of(v as u64).unwrap();
        let diff = difference(want, &got).unwrap();
        assert!(diff.is_empty(), "as_of({v}) round-trip: {diff:?}");
    }
    // asking beyond the newest version answers with the newest root
    let ahead = store.as_of(1_000).unwrap();
    assert!(difference(&ahead, &store.snapshot()).unwrap().is_empty());
}

#[test]
fn compaction_preserves_the_window_and_evicts_the_rest() {
    let store = retail_store(&RetailConfig::small());
    for i in 1..=8i64 {
        store
            .run(|txn| txn.update_attr("customers", &Value::Int(1), "credit", i))
            .unwrap();
    }
    assert_eq!(store.history().len(), 9, "v0..v8");
    let inside_before = store.as_of(6).unwrap();

    assert_eq!(store.compact_history(3), 6);
    assert_eq!(store.history().versions(), vec![6, 7, 8]);

    // inside the window: identical answers before and after compaction
    let inside_after = store.as_of(6).unwrap();
    assert!(difference(&inside_before, &inside_after)
        .unwrap()
        .is_empty());
    // below the window: typed eviction
    assert!(matches!(
        store.as_of(2).unwrap_err(),
        fdm_core::FdmError::VersionEvicted {
            version: 2,
            oldest: Some(6),
            ..
        }
    ));
    // new commits keep recording into the compacted history
    store
        .run(|txn| txn.update_attr("customers", &Value::Int(1), "credit", 99))
        .unwrap();
    assert_eq!(store.history().versions(), vec![6, 7, 8, 9]);
    assert_eq!(credit_of(&store.as_of(9).unwrap(), 1), 99);
}

#[test]
fn history_capacity_is_respected_under_load() {
    use fdm_txn::StoreConfig;
    let base = retail_store(&RetailConfig::small()).snapshot();
    let store = Store::with_config(
        base,
        StoreConfig {
            history_capacity: 5,
            ..StoreConfig::default()
        },
    );
    for i in 1..=20i64 {
        store
            .run(|txn| txn.update_attr("customers", &Value::Int(1), "credit", i))
            .unwrap();
    }
    assert_eq!(store.history().len(), 5);
    assert_eq!(store.history().oldest(), Some(16));
    assert!(store.as_of(10).is_err());
    assert_eq!(credit_of(&store.as_of(18).unwrap(), 1), 18);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the interleaving, replaying the recorded commit log onto
    /// the base snapshot reproduces the live root exactly.
    #[test]
    fn interleaved_commit_logs_replay_to_the_live_root(
        threads in 1usize..4,
        ops in 4usize..16,
        seed in any::<u64>(),
        skew in 0u8..3,
    ) {
        let store = retail_store(&RetailConfig::small());
        let cfg = MixedConfig {
            threads,
            ops_per_thread: ops,
            seed,
            skew: skew as f64 * 0.6,
        };
        let records = run_writers(&store, &cfg);
        prop_assert_eq!(records.len(), threads * ops);

        let base = store.as_of(0).unwrap();
        let replayed = replay_all(&base, &records);
        let live = store.snapshot();
        let diff = difference(&replayed, &live).unwrap();
        prop_assert!(diff.is_empty(), "replayed log diverges from live root: {:?}", diff);

        // and the history's newest entry is the live root
        let (v, newest) = store.history().latest().unwrap();
        prop_assert_eq!(v, store.version());
        prop_assert!(difference(&newest, &live).unwrap().is_empty());
    }
}

/// `Arc<Store>` keeps history shared: compaction through one handle is
/// visible through the other (no hidden copies).
#[test]
fn history_is_shared_across_store_handles() {
    let store = retail_store(&RetailConfig::small());
    let other: Arc<Store> = Arc::clone(&store);
    for i in 1..=4i64 {
        store
            .run(|txn| txn.update_attr("customers", &Value::Int(2), "credit", i))
            .unwrap();
    }
    assert_eq!(other.history().len(), 5);
    other.compact_history(2);
    assert_eq!(store.history().versions(), vec![3, 4]);
}
