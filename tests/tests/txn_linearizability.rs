//! Snapshot-isolation invariants under real concurrency: N writer
//! threads and M reader threads over the retail workload, clean and with
//! injected faults.
//!
//! Checked invariants:
//!
//! 1. **Monotone, gapless versions** — the committed versions across all
//!    writers are exactly `1..=n_commits`, each installed once.
//! 2. **No lost updates** — every customer's final `credit` equals the
//!    sum of the deltas of the commits that targeted it.
//! 3. **Readers only observe committed prefixes** — every concurrent
//!    reader sample `(version, total)` satisfies `total == cumulative
//!    delta sum at that version`, and versions are monotone per reader.
//! 4. **Time travel agrees with history** — `as_of(v)` is byte-identical
//!    (empty Fig. 9 `difference`) to replaying the recorded commit log
//!    up to `v` onto `as_of(0)`.
//!
//! Thread count is `THREADS` from the environment (default 4), so CI can
//! pin both a single-writer and a contended configuration.

use fdm_core::{DatabaseF, Value};
use fdm_fql::{db_upsert, difference};
use fdm_txn::{CommitPolicy, FaultPlan, Store};
use fdm_workload::{retail_store, run_writers, CommitRecord, MixedConfig, RetailConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn threads() -> usize {
    std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4)
}

fn mixed_config() -> MixedConfig {
    MixedConfig {
        threads: threads(),
        ops_per_thread: 200 / threads().max(1),
        seed: 2026,
        skew: 0.9,
    }
}

fn total_credit(db: &DatabaseF) -> i64 {
    db.relation("customers")
        .expect("retail store has customers")
        .tuples()
        .unwrap()
        .iter()
        .map(|(_, t)| t.get("credit").unwrap().as_int("credit").unwrap())
        .sum()
}

/// Replays `records` (any order) up to and including `upto` onto `base`,
/// applying each op the way the writers did.
fn replay(base: &DatabaseF, records: &[CommitRecord], upto: u64) -> DatabaseF {
    let mut sorted: Vec<&CommitRecord> = records.iter().filter(|r| r.version <= upto).collect();
    sorted.sort_unstable_by_key(|r| r.version);
    let mut db = base.clone();
    for r in sorted {
        let key = Value::Int(r.op.customer);
        let t = db.relation("customers").unwrap().lookup(&key).unwrap();
        let old = t.get("credit").unwrap().as_int("credit").unwrap();
        let t = t.with_attr("credit", old + r.op.delta);
        db = db_upsert(&db, "customers", key, t).unwrap();
    }
    db
}

/// Runs the mixed workload with concurrent readers and checks every
/// invariant. Returns the commit records for extra per-test assertions.
fn run_and_check(store: &Arc<Store>, cfg: &MixedConfig) -> Vec<CommitRecord> {
    let base = store.as_of(0).expect("version 0 is recorded at birth");
    let stop = AtomicBool::new(false);
    let (records, reader_samples) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..cfg.threads)
            .map(|_| {
                s.spawn(|| {
                    let mut samples: Vec<(u64, i64)> = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let (v, db) = store.snapshot_versioned();
                        samples.push((v, total_credit(&db)));
                    }
                    samples
                })
            })
            .collect();
        let records = run_writers(store, cfg);
        stop.store(true, Ordering::Release);
        let samples: Vec<Vec<(u64, i64)>> =
            readers.into_iter().map(|h| h.join().unwrap()).collect();
        (records, samples)
    });

    let n_commits = cfg.threads * cfg.ops_per_thread;
    assert_eq!(records.len(), n_commits);

    // 1. monotone, gapless versions: exactly 1..=n, each exactly once
    let mut versions: Vec<u64> = records.iter().map(|r| r.version).collect();
    versions.sort_unstable();
    assert_eq!(
        versions,
        (1..=n_commits as u64).collect::<Vec<_>>(),
        "every commit installs exactly one fresh version"
    );
    assert_eq!(store.version(), n_commits as u64);

    // 2. no lost updates, per customer
    let mut expect: BTreeMap<i64, i64> = BTreeMap::new();
    for r in &records {
        *expect.entry(r.op.customer).or_default() += r.op.delta;
    }
    let live = store.snapshot();
    for (k, t) in live.relation("customers").unwrap().tuples().unwrap() {
        let cid = k.as_int("cid").unwrap();
        let credit = t.get("credit").unwrap().as_int("credit").unwrap();
        assert_eq!(
            credit,
            expect.get(&cid).copied().unwrap_or(0),
            "customer {cid}: final credit must equal the sum of committed deltas"
        );
    }

    // 3. readers observed only committed prefixes
    let mut cumulative: BTreeMap<u64, i64> = BTreeMap::new();
    let mut running = 0i64;
    cumulative.insert(0, 0);
    let mut by_version: Vec<&CommitRecord> = records.iter().collect();
    by_version.sort_unstable_by_key(|r| r.version);
    for r in &by_version {
        running += r.op.delta;
        cumulative.insert(r.version, running);
    }
    for samples in &reader_samples {
        let mut last = 0u64;
        for &(v, total) in samples {
            assert!(v >= last, "reader versions are monotone");
            last = v;
            assert_eq!(
                total, cumulative[&v],
                "a reader at v{v} must see exactly the committed prefix"
            );
        }
    }

    // 4. as_of(v) is byte-identical to the replayed history
    let step = (n_commits / 16).max(1);
    for v in (0..=n_commits as u64).step_by(step) {
        let observed = store.as_of(v).unwrap();
        let expected = replay(&base, &records, v);
        let diff = difference(&expected, &observed).unwrap();
        assert!(
            diff.is_empty(),
            "as_of({v}) diverges from the replayed commit log: {diff:?}"
        );
    }
    records
}

#[test]
fn concurrent_writers_and_readers_preserve_snapshot_isolation() {
    let store = retail_store(&RetailConfig::small());
    run_and_check(&store, &mixed_config());
}

#[test]
fn invariants_hold_under_injected_faults() {
    let store = retail_store(&RetailConfig::small());
    let cfg = mixed_config();
    let n_commits = (cfg.threads * cfg.ops_per_thread) as u64;

    let plan = FaultPlan::new();
    // a forced transient conflict roughly every third version, and a few
    // stalls between validation and install to widen the race window
    for v in (0..n_commits).step_by(3) {
        plan.force_conflict_at(v);
    }
    for v in [1, 5, 11] {
        plan.delay_before_cas_at(v, Duration::from_micros(200));
    }
    store.install_fault_plan(Arc::clone(&plan));

    let records = run_and_check(&store, &cfg);

    assert!(
        plan.injected_conflicts() > 0,
        "the fault plan must actually have fired"
    );
    assert!(
        records.iter().all(|r| r.attempts >= 1),
        "attempts are always counted"
    );
}

#[test]
fn forced_conflict_is_retried_where_old_code_gave_up() {
    let store = retail_store(&RetailConfig::small());
    let plan = FaultPlan::new();
    plan.force_conflict_at(0);
    store.install_fault_plan(plan);

    // default policy: survives the injected conflict transparently
    let mut txn = store.begin();
    txn.update_attr("customers", &Value::Int(1), "credit", 10)
        .unwrap();
    let outcome = txn.commit_with(&CommitPolicy::default()).unwrap();
    assert_eq!(outcome.version, 1);
    assert!(outcome.attempts >= 2, "at least one replay happened");

    // the pre-hardening behavior, pinned: one attempt, immediate error
    let plan = FaultPlan::new();
    plan.force_conflict_at(1);
    store.install_fault_plan(plan);
    let mut txn = store.begin();
    txn.update_attr("customers", &Value::Int(1), "credit", 20)
        .unwrap();
    assert!(txn.commit_with(&CommitPolicy::no_retry()).is_err());
}

#[test]
fn compaction_bounds_time_travel_but_keeps_the_window() {
    let store = retail_store(&RetailConfig::small());
    for i in 1..=10i64 {
        store
            .run(|txn| txn.update_attr("customers", &Value::Int(1), "credit", i))
            .unwrap();
    }
    let evicted = store.compact_history(4);
    assert_eq!(evicted, 7, "11 recorded roots (v0..v10), 4 kept");
    assert_eq!(store.history().oldest(), Some(7));
    for v in 7..=10 {
        let db = store.as_of(v).unwrap();
        let credit = db
            .relation("customers")
            .unwrap()
            .lookup(&Value::Int(1))
            .unwrap()
            .get("credit")
            .unwrap();
        assert_eq!(credit, Value::Int(v as i64));
    }
    let err = store.as_of(3).unwrap_err();
    assert!(
        matches!(
            err,
            fdm_core::FdmError::VersionEvicted {
                version: 3,
                oldest: Some(7),
                ..
            }
        ),
        "{err:?}"
    );
}
