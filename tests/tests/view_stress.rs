//! Maintained views under real concurrency (PR 9): Zipf-contended
//! writer threads from `fdm_workload::driver` against a store with
//! registered views, clean and with injected faults.
//!
//! Checked invariants:
//!
//! 1. **Eager views ride every commit** — after the writer run, the
//!    eager view's watermark is the store head and its content equals a
//!    from-scratch evaluation of its plan on the head snapshot.
//! 2. **Versioned refresh is exact** — for *every* committed version
//!    `v`, bringing a manual-mode view forward with
//!    `refresh_views_to(v)` yields exactly the plan evaluated over
//!    `as_of(v)` — the differential oracle, once per version.
//! 3. **Fault injection changes nothing observable** — forced
//!    transient conflicts and widened CAS races (the PR 6 `FaultPlan`)
//!    leave both invariants intact.
//! 4. **Mid-stream registration is race-free** — a view registered
//!    while writers are committing starts at a consistent snapshot and
//!    tracks from there.
//!
//! Thread count is `THREADS` from the environment (default 4); the CI
//! `view-stress` job runs this file at 1 and 4.

use fdm_core::RelationF;
use fdm_expr::Params;
use fdm_fql::plan::Query;
use fdm_fql::AggSpec;
use fdm_tests::canonical_rows;
use fdm_txn::{FaultPlan, RefreshMode, Store};
use fdm_workload::{retail_store, run_writers, MixedConfig, RetailConfig};
use std::sync::Arc;
use std::time::Duration;

fn threads() -> usize {
    std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4)
}

fn mixed_config() -> MixedConfig {
    MixedConfig {
        threads: threads(),
        ops_per_thread: 120 / threads().max(1),
        seed: 92,
        skew: 0.9,
    }
}

/// The eager view: customers someone has paid credit into.
fn hot_query() -> Query {
    Query::scan("customers").filter("credit > 0", Params::new())
}

/// The manual view: per-state credit totals — group/aggregate, the
/// operator with the most delta state.
fn by_state_query() -> Query {
    Query::scan("customers").group_agg(
        &["state"],
        &[
            ("n", AggSpec::Count),
            ("credit", AggSpec::Sum("credit".into())),
        ],
    )
}

fn assert_rows_equal(maintained: &RelationF, plan: &Query, db: &fdm_core::DatabaseF, ctx: &str) {
    let fresh = plan.eval(db).expect("recompute oracle");
    assert_eq!(
        canonical_rows(maintained),
        canonical_rows(&fresh),
        "{ctx}: maintained view diverged from recompute"
    );
}

/// Runs the writers, then checks both invariants: the eager view at
/// head, and the manual view against `as_of(v)` for every `v`.
fn run_and_check(store: &Arc<Store>, cfg: &MixedConfig) {
    let v0 = store.register_view("hot", hot_query()).unwrap();
    assert_eq!(v0, 0);
    store
        .register_view_with("by_state", by_state_query(), RefreshMode::Manual)
        .unwrap();

    let records = run_writers(store, cfg);
    let head = store.version();
    assert_eq!(records.len() as u64, head, "writers install every version");

    // eager: already at the head, equal to a from-scratch evaluation
    let (v, rel) = store.view("hot").unwrap();
    assert_eq!(v, head, "eager views read at the commit head");
    assert_rows_equal(&rel, &hot_query(), &store.snapshot(), "eager at head");
    let stats = store.view_stats("hot").unwrap();
    assert_eq!(stats.deltas_applied, head, "one delta per commit");
    assert_eq!(stats.fallback_recomputes, 0, "point writes never fall back");

    // manual: versioned refresh equals time travel, at every version
    for v in 1..=head {
        let reached = store.refresh_views_to(v).unwrap();
        assert_eq!(reached, v, "contiguous history refreshes exactly to v");
        let (vw, rel) = store.view("by_state").unwrap();
        assert_eq!(vw, v);
        let past = store.as_of(v).unwrap();
        assert_rows_equal(&rel, &by_state_query(), &past, &format!("refresh_to({v})"));
    }
}

#[test]
fn views_stay_equivalent_under_contended_writers() {
    let store = retail_store(&RetailConfig::small());
    run_and_check(&store, &mixed_config());
}

#[test]
fn views_stay_equivalent_under_injected_faults() {
    let store = retail_store(&RetailConfig::small());
    let cfg = mixed_config();
    let n_commits = (cfg.threads * cfg.ops_per_thread) as u64;

    let plan = FaultPlan::new();
    for v in (0..n_commits).step_by(3) {
        plan.force_conflict_at(v);
    }
    for v in [1, 5, 11] {
        plan.delay_before_cas_at(v, Duration::from_micros(200));
    }
    store.install_fault_plan(Arc::clone(&plan));

    run_and_check(&store, &cfg);

    assert!(
        plan.injected_conflicts() > 0,
        "the fault plan must actually have fired"
    );
}

#[test]
fn registration_mid_stream_starts_consistent() {
    let store = retail_store(&RetailConfig::small());
    let cfg = MixedConfig {
        threads: threads(),
        ops_per_thread: 60 / threads().max(1),
        seed: 777,
        skew: 0.9,
    };
    // register from a racing thread while writers are mid-run
    let registered_at = std::thread::scope(|s| {
        let store2 = Arc::clone(&store);
        let reg = s.spawn(move || {
            // land somewhere inside the writer run
            std::thread::sleep(Duration::from_millis(2));
            store2.register_view("late", hot_query()).unwrap()
        });
        run_writers(&store, &cfg);
        reg.join().expect("registration thread")
    });
    let head = store.version();
    assert!(registered_at <= head);
    // after the run the late view has caught up to the head and agrees
    // with a fresh evaluation
    let (v, rel) = store.view("late").unwrap();
    assert_eq!(v, head);
    assert_rows_equal(&rel, &hot_query(), &store.snapshot(), "late registration");
}
