//! The data-key fingerprint cache must be **impossible to observe**
//! except as speed: every FQL write path (`update`), every transforming
//! operator (`transform`), and every computed-attribute rebinding must
//! yield tuples whose cached `data_key()` equals a from-scratch
//! `compute_data_key()` — i.e. stale-cache reuse cannot happen, because
//! every mutation constructs a new tuple with an empty cache (see the
//! invalidation contract in `fdm_core::tuple`).

use fdm_core::{DatabaseF, RelationF, TupleF, Value};
use fdm_fql::{
    db_modify_attr, db_update_attr, db_upsert, deep_copy, difference, extend, extend_stored,
    intersect, minus, rename_attrs,
};
use fdm_workload::{generate, to_fdm, RetailConfig};

/// Every stored tuple's cached data key must agree with an uncached
/// recomputation.
fn assert_caches_fresh(rel: &RelationF, what: &str) {
    for (key, tuple) in rel.tuples().unwrap() {
        assert_eq!(
            tuple.data_key().unwrap(),
            tuple.compute_data_key().unwrap(),
            "{what}: stale fingerprint at key {key}"
        );
    }
}

fn shop() -> DatabaseF {
    to_fdm(&generate(&RetailConfig::small()))
}

#[test]
fn update_paths_recompute_fingerprints() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    // warm every cache first, so staleness would be observable
    assert_caches_fresh(&customers, "warm-up");
    let old_dk = customers
        .lookup(&Value::Int(1))
        .unwrap()
        .data_key()
        .unwrap();

    // customers[1]['age'] = 99
    let db2 = db_update_attr(&db, "customers", &Value::Int(1), "age", 99).unwrap();
    let updated = db2.relation("customers").unwrap();
    let t = updated.lookup(&Value::Int(1)).unwrap();
    assert_ne!(t.data_key().unwrap(), old_dk, "update must change the key");
    assert_caches_fresh(&updated, "db_update_attr");

    // read-modify-write
    let db3 = db_modify_attr(&db2, "customers", &Value::Int(1), "age", |v| {
        v.add(&Value::Int(1))
    })
    .unwrap();
    assert_caches_fresh(&db3.relation("customers").unwrap(), "db_modify_attr");

    // whole-tuple replacement
    let db4 = db_upsert(
        &db3,
        "customers",
        Value::Int(1),
        TupleF::builder("c1")
            .attr("name", "Replaced")
            .attr("age", 1)
            .attr("state", "ZZ")
            .build(),
    )
    .unwrap();
    let t4 = db4
        .relation("customers")
        .unwrap()
        .lookup(&Value::Int(1))
        .unwrap();
    assert_eq!(t4.data_key().unwrap(), t4.compute_data_key().unwrap());
    assert_ne!(t4.data_key().unwrap(), old_dk);
}

#[test]
fn transform_paths_recompute_fingerprints() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    assert_caches_fresh(&customers, "warm-up");

    // extend: adds a *computed* attribute — the rebuilt tuple's key must
    // include it
    let extended = extend(&customers, "age_months", |t| {
        t.get("age")?.mul(&Value::Int(12))
    })
    .unwrap();
    assert_caches_fresh(&extended, "extend");
    let (k, t) = extended.tuples().unwrap().remove(0);
    let base = customers.lookup(&k).unwrap();
    assert_ne!(
        t.data_key().unwrap(),
        base.data_key().unwrap(),
        "computed attribute participates in the key"
    );

    // extend_stored
    let stored = extend_stored(&customers, "flag", |_| Ok(Value::Bool(true))).unwrap();
    assert_caches_fresh(&stored, "extend_stored");

    // rename_attrs: the attribute *name* is part of the canonical key
    let renamed = rename_attrs(&customers, &[("age", "years")]).unwrap();
    assert_caches_fresh(&renamed, "rename_attrs");
    let (k, t) = renamed.tuples().unwrap().remove(0);
    assert_ne!(
        t.data_key().unwrap(),
        customers.lookup(&k).unwrap().data_key().unwrap()
    );
}

#[test]
fn computed_attr_rebinding_recomputes() {
    let rel = RelationF::new("r", &["id"])
        .insert(
            Value::Int(1),
            TupleF::builder("t")
                .attr("x", 2)
                .computed("doubled", |t| t.get("x")?.mul(&Value::Int(2)))
                .build(),
        )
        .unwrap();
    let t = rel.lookup(&Value::Int(1)).unwrap();
    let dk1 = t.data_key().unwrap(); // caches [doubled=4, x=2]
                                     // rebinding x: the computed attribute now evaluates differently
    let rel2 = rel.update_attr(&Value::Int(1), "x", 5).unwrap();
    let t2 = rel2.lookup(&Value::Int(1)).unwrap();
    assert_eq!(t2.data_key().unwrap(), t2.compute_data_key().unwrap());
    assert_ne!(t2.data_key().unwrap(), dk1, "doubled=10 now");
    assert_eq!(t2.get("doubled").unwrap(), Value::Int(10));
}

#[test]
fn setops_see_fresh_fingerprints_after_mutation() {
    // The fig9 flow with caches deliberately warmed at every step: if any
    // setop consumed a stale fingerprint, the differential would miss the
    // change or invent one.
    let db = shop();
    let copy = deep_copy(&db).unwrap();
    for rel in ["customers", "products"] {
        assert_caches_fresh(&copy.relation(rel).unwrap(), "deep_copy output");
    }
    // identical copy: warm both sides' caches through a full differential
    assert!(difference(&db, &copy).unwrap().is_empty());

    // now mutate one attribute of one tuple in the copy
    let copy2 = db_update_attr(&copy, "customers", &Value::Int(7), "age", 999).unwrap();
    let diff = difference(&db, &copy2).unwrap();
    let added = diff.relation("customers.added").unwrap();
    let removed = diff.relation("customers.removed").unwrap();
    assert_eq!(added.len(), 1, "exactly the mutated tuple appears");
    assert_eq!(removed.len(), 1);
    assert_eq!(
        added.lookup(&Value::Int(7)).unwrap().get("age").unwrap(),
        Value::Int(999)
    );

    // intersect/minus agree: the mutated key is in neither intersection side
    let i = intersect(&db, &copy2).unwrap();
    assert!(i
        .relation("customers")
        .unwrap()
        .lookup(&Value::Int(7))
        .is_none());
    let m = minus(&db, &copy2).unwrap();
    assert_eq!(m.relation("customers").unwrap().len(), 1);

    // and un-mutating restores emptiness (no stale "changed" verdict)
    let back = db_update_attr(
        &copy2,
        "customers",
        &Value::Int(7),
        "age",
        db.relation("customers")
            .unwrap()
            .lookup(&Value::Int(7))
            .unwrap()
            .get("age")
            .unwrap(),
    )
    .unwrap();
    assert!(difference(&db, &back).unwrap().is_empty());
}

#[test]
fn eq_data_matches_materialized_comparison() {
    // eq_data now runs on fingerprints; pin it against the definitional
    // comparison (sorted materialized pairs) on a real workload.
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let shifted = db_update_attr(&db, "customers", &Value::Int(3), "age", 0)
        .unwrap()
        .relation("customers")
        .unwrap()
        .clone();
    for (key, a) in customers.tuples().unwrap() {
        let b = shifted.lookup(&key).unwrap();
        let reference = {
            let mut pa = a.materialize().unwrap();
            let mut pb = b.materialize().unwrap();
            pa.sort_by(|x, y| x.0.cmp(&y.0));
            pb.sort_by(|x, y| x.0.cmp(&y.0));
            pa == pb
        };
        assert_eq!(a.eq_data(&b), reference, "diverges at key {key}");
    }
}
