//! Pins the cost-modeled join-planning guarantee: the statistics-driven
//! relationship ordering (`fdm_core::stats`) may change the **order** work
//! happens in, never **what** a join produces.
//!
//! Two layers of pinning:
//!
//! * on a database crafted so the fan-out-aware plan genuinely differs
//!   from the old raw-entry-count plan (`FDM_JOIN_COST=entries`), the
//!   denormalized rows are identical as data (same multiset of canonical
//!   tuple data keys) — and the test *proves* the plans differed by
//!   observing the attribute order the executed order leaves behind;
//! * on the retail workload (one relationship — every plan coincides),
//!   the outputs are **byte-identical**: same keys in the same order, same
//!   attributes in the same declaration order.

use fdm_core::{
    Domain, Participant, RelationBuilder, RelationF, RelationshipBuilder, SharedDomain, TupleF,
    Value, ValueType,
};
use fdm_fql::join;
use fdm_workload::{generate, to_fdm, RetailConfig};
use std::sync::Mutex;

/// Serializes the tests that flip `FDM_JOIN_COST` (env vars are
/// process-global; the harness runs tests concurrently).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_join_cost<T>(mode: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("FDM_JOIN_COST").ok();
    match mode {
        Some(v) => std::env::set_var("FDM_JOIN_COST", v),
        None => std::env::remove_var("FDM_JOIN_COST"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("FDM_JOIN_COST", v),
        None => std::env::remove_var("FDM_JOIN_COST"),
    }
    out
}

fn int_keyed(name: &str, key: &str, n: i64, attr: &str) -> RelationF {
    let mut b = RelationBuilder::new(name, &[key]);
    for i in 1..=n {
        b.push(
            Value::Int(i),
            TupleF::builder(format!("{name}{i}"))
                .attr(attr, format!("{name}_{i}"))
                .build(),
        );
    }
    b.build().unwrap()
}

/// A database where entry-count ordering and fan-out ordering disagree.
///
/// After `r1(A, B)` seeds the working rows (smallest relationship, both
/// plans start there), two relationships connect through `B`:
///
/// * `r2(B, C)` — 50 entries, one per distinct `B` key: fan-out 1.
///   Estimated rows = rows × 50/50 = rows.
/// * `r3(B, D)` — 40 entries piled onto 4 distinct `B` keys: fan-out 10.
///   Estimated rows = rows × 40/4 = 10 × rows.
///
/// Raw entry count prefers `r3` (40 < 50) — the plan that multiplies the
/// working rows tenfold before the cheap extension. The cost model
/// prefers `r2`.
fn fanout_db() -> fdm_core::DatabaseF {
    let aid = SharedDomain::new("aid", Domain::Typed(ValueType::Int));
    let bid = SharedDomain::new("bid", Domain::Typed(ValueType::Int));
    let cid = SharedDomain::new("cid", Domain::Typed(ValueType::Int));
    let did = SharedDomain::new("did", Domain::Typed(ValueType::Int));

    let mut r1 = RelationshipBuilder::new(
        "r1",
        vec![
            Participant::new("a", "aid", aid.clone()),
            Participant::new("b", "bid", bid.clone()),
        ],
    );
    for (a, b) in [(1, 1), (1, 2), (2, 3), (2, 4), (2, 5)] {
        r1.push_link(&[Value::Int(a), Value::Int(b)]).unwrap();
    }
    let mut r2 = RelationshipBuilder::new(
        "r2",
        vec![
            Participant::new("b", "bid", bid.clone()),
            Participant::new("c", "cid", cid.clone()),
        ],
    );
    for b in 1..=50 {
        r2.push_link(&[Value::Int(b), Value::Int(b)]).unwrap();
    }
    let mut r3 = RelationshipBuilder::new(
        "r3",
        vec![
            Participant::new("b", "bid", bid.clone()),
            Participant::new("d", "did", did.clone()),
        ],
    );
    for b in 1..=4 {
        for d in 1..=10 {
            r3.push_link(&[Value::Int(b), Value::Int(d)]).unwrap();
        }
    }

    fdm_core::DatabaseF::new("fanout")
        .with_domain(aid)
        .with_domain(bid)
        .with_domain(cid)
        .with_domain(did)
        .with_relation(int_keyed("a", "aid", 2, "an"))
        .with_relation(int_keyed("b", "bid", 50, "bn"))
        .with_relation(int_keyed("c", "cid", 50, "cn"))
        .with_relation(int_keyed("d", "did", 10, "dn"))
        .with_relationship(r1.build().unwrap())
        .with_relationship(r2.build().unwrap())
        .with_relationship(r3.build().unwrap())
}

/// The canonical, order-insensitive content of a join result: every
/// tuple's sorted-attribute data key, as a sorted multiset.
fn row_data_keys(rel: &RelationF) -> Vec<Value> {
    let mut keys: Vec<Value> = rel
        .tuples()
        .unwrap()
        .into_iter()
        .map(|(_, t)| t.data_key().unwrap())
        .collect();
    keys.sort();
    keys
}

/// Which of the two relationship names was executed earlier, read off the
/// declaration-order attribute list the executed plan leaves behind.
fn first_executed(rel: &RelationF, earlier: &str, later: &str) -> bool {
    let (_, t) = rel.tuples().unwrap().remove(0);
    let names: Vec<String> = t.attr_names().map(|n| n.to_string()).collect();
    let pos = |prefix: &str| {
        names
            .iter()
            .position(|n| n.starts_with(prefix))
            .unwrap_or_else(|| panic!("no attribute with prefix {prefix} in {names:?}"))
    };
    pos(earlier) < pos(later)
}

#[test]
fn stats_plan_changes_order_never_results() {
    let db = fanout_db();
    let by_stats = with_join_cost(None, || join(&db).unwrap());
    let by_entries = with_join_cost(Some("entries"), || join(&db).unwrap());

    // The two plans genuinely differ: the cost model binds the fan-out-1
    // r2 (reaching relation `c`) before the row-multiplying r3 (reaching
    // `d`); raw entry count does the reverse. The executed order is
    // visible in the attribute declaration order of the output rows.
    assert!(
        first_executed(&by_stats, "c.", "d."),
        "cost model should bind r2 (→ c) before r3 (→ d)"
    );
    assert!(
        first_executed(&by_entries, "d.", "c."),
        "entry-count heuristic should bind r3 (→ d) before r2 (→ c)"
    );

    // ...and yet the produced rows are identical as data.
    assert_eq!(by_stats.len(), 40, "5 seeds × fanout, b5 dangling in r3");
    assert_eq!(by_stats.len(), by_entries.len());
    assert_eq!(row_data_keys(&by_stats), row_data_keys(&by_entries));
}

#[test]
fn coinciding_plans_are_byte_identical() {
    // One relationship — every ordering heuristic picks it first, so the
    // outputs must agree to the byte: key sequence, attribute declaration
    // order, every value.
    let db = to_fdm(&generate(&RetailConfig::small()));
    let by_stats = with_join_cost(None, || join(&db).unwrap());
    let by_entries = with_join_cost(Some("entries"), || join(&db).unwrap());
    let flatten = |rel: &RelationF| -> Vec<(Value, Vec<(String, Value)>)> {
        rel.tuples()
            .unwrap()
            .into_iter()
            .map(|(k, t)| {
                (
                    k,
                    t.materialize()
                        .unwrap()
                        .into_iter()
                        .map(|(n, v)| (n.to_string(), v))
                        .collect(),
                )
            })
            .collect()
    };
    assert_eq!(flatten(&by_stats), flatten(&by_entries));
}

#[test]
fn workload_relationship_stats_are_current() {
    let cfg = RetailConfig::small();
    let data = generate(&cfg);
    let db = to_fdm(&data);
    let order = db.relationship("order").unwrap();
    let stats = order.stats();
    assert_eq!(stats.entries(), data.orders.len());
    let distinct_cids: std::collections::BTreeSet<i64> =
        data.orders.iter().map(|(c, _, _, _)| *c).collect();
    let distinct_pids: std::collections::BTreeSet<i64> =
        data.orders.iter().map(|(_, p, _, _)| *p).collect();
    assert_eq!(stats.distinct(0), distinct_cids.len());
    assert_eq!(stats.distinct(1), distinct_pids.len());
    // and they stay current through point mutations
    let order2 = order
        .insert_link(&[Value::Int(1), Value::Int(1_000_000)])
        .unwrap();
    assert_eq!(order2.stats().entries(), stats.entries() + 1);
    assert_eq!(order2.stats().distinct(1), stats.distinct(1) + 1);
}
