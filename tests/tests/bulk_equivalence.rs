//! The bulk-construction fast path must be **observably invisible**: every
//! migrated FQL operator has to produce results identical to the old
//! per-tuple `insert` idiom on the retail workload.
//!
//! Each reference below re-implements the pre-builder idiom (`out =
//! out.insert(...)?` into a fresh `RelationF`, or the nested relationship
//! scan for `join`) and compares fingerprints: the exact key sequence plus
//! every tuple's materialized, name-sorted attribute list.

use fdm_core::{DatabaseF, RelationF, TupleF, Value};
use fdm_expr::Params;
use fdm_fql::prelude::*;
use fdm_fql::{aggregate, group, join_on, pivot, JoinOn, Query};
use fdm_workload::{generate, to_fdm, RetailConfig};
use std::sync::Arc;

fn shop() -> DatabaseF {
    to_fdm(&generate(&RetailConfig {
        customers: 400,
        products: 60,
        orders: 1500,
        product_skew: 0.8,
        inactive_customers: 0.2,
        seed: 20260730,
    }))
}

/// A relation's full observable content: keys in iteration order, each with
/// the tuple's materialized attributes sorted by name.
fn fingerprint(rel: &RelationF) -> Vec<(Value, Vec<(String, Value)>)> {
    rel.tuples()
        .unwrap()
        .into_iter()
        .map(|(k, t)| {
            let mut attrs: Vec<(String, Value)> = t
                .materialize()
                .unwrap()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
            attrs.sort_by(|a, b| a.0.cmp(&b.0));
            (k, attrs)
        })
        .collect()
}

fn assert_same(bulk: &RelationF, reference: &RelationF, what: &str) {
    assert_eq!(bulk.len(), reference.len(), "{what}: cardinality");
    assert_eq!(
        fingerprint(bulk),
        fingerprint(reference),
        "{what}: keys or tuple data diverge"
    );
}

/// The old idiom: rebuild a relation one persistent insert at a time.
fn insert_loop(
    name: &str,
    key_attrs: &[&str],
    entries: impl IntoIterator<Item = (Value, Arc<TupleF>)>,
) -> RelationF {
    let mut out = RelationF::new(name, key_attrs);
    for (k, t) in entries {
        out = out.insert_arc(k, t).expect("reference insert");
    }
    out
}

#[test]
fn filter_matches_insert_loop() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let bulk = filter_expr(&customers, "age > $min", Params::new().set("min", 42)).unwrap();
    let reference = insert_loop(
        "customers",
        &["cid"],
        customers
            .tuples()
            .unwrap()
            .into_iter()
            .filter(|(_, t)| t.get("age").unwrap() > Value::Int(42)),
    );
    assert_same(&bulk, &reference, "filter");
}

#[test]
fn order_by_and_limit_match_insert_loop() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let bulk = order_by(&customers, "age", Order::Asc).unwrap();
    let mut entries: Vec<(Value, Value, Arc<TupleF>)> = customers
        .tuples()
        .unwrap()
        .into_iter()
        .map(|(k, t)| (t.get("age").unwrap(), k, t))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let reference = insert_loop(
        bulk.name(),
        &["rank"],
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (_, _, t))| (Value::Int(i as i64), t)),
    );
    assert_same(&bulk, &reference, "order_by");
    assert_same(
        &limit(&bulk, 50).unwrap(),
        &insert_loop(
            bulk.name(),
            &["rank"],
            reference.tuples().unwrap().into_iter().take(50),
        ),
        "limit",
    );
}

#[test]
fn group_aggregate_matches_insert_loop() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let groups = group(&customers, &["state"]).unwrap();
    let bulk = aggregate(
        &groups,
        &[("n", AggSpec::Count), ("avg", AggSpec::Avg("age".into()))],
    )
    .unwrap();
    let mut reference = RelationF::new("aggregates", &["state"]);
    for (key, members) in groups.iter() {
        let mut sum = 0.0;
        for m in &members {
            sum += m.get("age").unwrap().as_float("age").unwrap();
        }
        let t = TupleF::builder(format!("agg[{key}]"))
            .attr("state", key.clone())
            .attr("n", members.len() as i64)
            .attr("avg", sum / members.len() as f64)
            .build();
        reference = reference.insert(key, t).unwrap();
    }
    assert_same(&bulk, &reference, "aggregate");
}

#[test]
fn pivot_matches_insert_loop() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let bulk = pivot(&customers, "state", "age", &AggSpec::Count).unwrap();
    // reference: bucket by (state, age) with per-tuple inserts
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<Value, BTreeMap<Value, i64>> = BTreeMap::new();
    for (_, t) in customers.tuples().unwrap() {
        *cells
            .entry(t.get("state").unwrap())
            .or_default()
            .entry(t.get("age").unwrap())
            .or_default() += 1;
    }
    let mut reference = RelationF::new(bulk.name(), &["state"]);
    for (state, cols) in cells {
        let mut b = TupleF::builder(format!("pivot[{state}]")).attr("state", state.clone());
        for (age, n) in cols {
            b = b.attr(age.to_string(), n);
        }
        reference = reference.insert(state, b.build()).unwrap();
    }
    assert_same(&bulk, &reference, "pivot");
}

#[test]
fn schema_join_matches_nested_scan_reference() {
    let db = shop();
    let bulk = fdm_fql::join(&db).unwrap();
    // The old algorithm on this schema: one seed row, then for every
    // relationship entry in key order, bind customer and product by lookup
    // (inner join: dangling keys drop the entry).
    let customers = db.relation("customers").unwrap();
    let products = db.relation("products").unwrap();
    let order = db.relationship("order").unwrap();
    let mut reference = RelationF::new("join_result", &["row"]);
    let mut i = 0i64;
    for (args, rattrs) in order.iter() {
        let (Some(c), Some(p)) = (customers.lookup(&args[0]), products.lookup(&args[1])) else {
            continue;
        };
        let mut b = TupleF::builder(format!("j{i}"));
        b = b.attr("customers.cid", args[0].clone());
        for (n, v) in c.materialize().unwrap() {
            b = b.attr(format!("customers.{n}"), v);
        }
        b = b.attr("products.pid", args[1].clone());
        for (n, v) in p.materialize().unwrap() {
            b = b.attr(format!("products.{n}"), v);
        }
        for (n, v) in rattrs.materialize().unwrap() {
            b = b.attr(format!("order.{n}"), v);
        }
        reference = reference.insert(Value::Int(i), b.build()).unwrap();
        i += 1;
    }
    assert_same(&bulk, &reference, "schema join");
}

#[test]
fn join_on_matches_schema_join_cardinality_and_data() {
    let db = shop();
    let order_rel = db
        .relationship("order")
        .unwrap()
        .to_relation()
        .renamed("orders");
    let db2 = db.with_relation(order_rel);
    let on = join_on(
        &db2,
        &[
            JoinOn::new("customers", "cid", "orders", "cid"),
            JoinOn::new("orders", "pid", "products", "pid"),
        ],
    )
    .unwrap();
    let schema = fdm_fql::join(&db).unwrap();
    assert_eq!(on.len(), schema.len(), "both join strategies agree on size");
    // every schema-join row has a data-equal counterpart in the on-join
    // (modulo the qualifier prefix of the flattened relationship)
    let mut schema_dates: Vec<Value> = schema
        .tuples()
        .unwrap()
        .into_iter()
        .map(|(_, t)| t.get("order.date").unwrap())
        .collect();
    let mut on_dates: Vec<Value> = on
        .tuples()
        .unwrap()
        .into_iter()
        .map(|(_, t)| t.get("orders.date").unwrap())
        .collect();
    schema_dates.sort();
    on_dates.sort();
    assert_eq!(schema_dates, on_dates);
}

#[test]
fn reduce_db_matches_insert_loop_restriction() {
    let db = shop();
    let reduced = reduce_db(&db).unwrap();
    // reference restriction: keys that appear in any order entry
    let order = db.relationship("order").unwrap();
    let customers = db.relation("customers").unwrap();
    let active: std::collections::BTreeSet<Value> =
        order.iter().map(|(args, _)| args[0].clone()).collect();
    let reference = insert_loop(
        "customers",
        &["cid"],
        customers
            .tuples()
            .unwrap()
            .into_iter()
            .filter(|(k, _)| active.contains(k)),
    );
    assert_same(
        &reduced.relation("customers").unwrap(),
        &reference,
        "reduce_db",
    );
}

#[test]
fn setops_match_insert_loop() {
    let db = shop();
    let copy = deep_copy(&db).unwrap();
    assert_same(
        &copy.relation("customers").unwrap(),
        &db.relation("customers").unwrap(),
        "deep_copy",
    );
    // mutate the copy, then union/minus must match key-by-key references
    let customers = copy.relation("customers").unwrap();
    let customers = customers.delete(&Value::Int(1)).unwrap();
    let copy2 = copy.with_entry("customers", fdm_core::FnValue::from(customers));
    let u = union(&db, &copy2).unwrap();
    assert_same(
        &u.relation("customers").unwrap(),
        &db.relation("customers").unwrap(),
        "union with subset",
    );
    let m = minus(&db, &copy2).unwrap();
    assert_eq!(m.relation("customers").unwrap().len(), 1);
    let i = intersect(&db, &copy2).unwrap();
    assert_eq!(
        i.relation("customers").unwrap().len(),
        db.relation("customers").unwrap().len() - 1
    );
}

#[test]
fn plan_pipeline_matches_eager_operators() {
    let db = shop();
    let order_rel = db
        .relationship("order")
        .unwrap()
        .to_relation()
        .renamed("orders");
    let db = db.with_relation(order_rel);
    let q = Query::scan("orders")
        .join("customers", "cid", "cid")
        .filter("quantity > 2", Params::new())
        .group_agg(&["customers.state"], &[("n", AggSpec::Count)]);
    let lazy = q.clone().eval(&db).unwrap();
    let optimized = q.optimize().eval(&db).unwrap();
    assert_same(&lazy, &optimized, "optimizer must not change results");
}

#[test]
fn index_by_matches_per_tuple_grouping() {
    let db = shop();
    let customers = db.relation("customers").unwrap();
    let by_state = customers.index_by("state").unwrap();
    assert!(by_state.is_multi());
    let mut total = 0usize;
    for key in by_state.stored_keys() {
        let members = by_state.lookup_all(&key);
        total += members.len();
        for m in &members {
            assert_eq!(m.get("state").unwrap(), key);
        }
    }
    assert_eq!(total, customers.len(), "index_by partitions the relation");
    // group order within a key follows base key order (stable sort)
    let ny = by_state.lookup_all(&Value::str("NY"));
    let mut last = i64::MIN;
    for m in &ny {
        // tuple names are c<cid>, so recover cid ordering via the name
        let cid: i64 = m.name().trim_start_matches('c').parse().unwrap();
        assert!(cid > last, "stable grouping preserves base order");
        last = cid;
    }
}

#[test]
fn builder_duplicate_keys_error_like_insert() {
    let mut b = fdm_core::RelationBuilder::new("dup", &["id"]);
    b.push(Value::Int(2), TupleF::builder("t").attr("x", 1).build());
    b.push(Value::Int(1), TupleF::builder("t").attr("x", 2).build());
    b.push(Value::Int(2), TupleF::builder("t").attr("x", 3).build());
    let err = b.build().unwrap_err();
    assert!(
        matches!(err, fdm_core::FdmError::DuplicateKey { .. }),
        "builder mirrors insert's duplicate-key error, got {err}"
    );
}
