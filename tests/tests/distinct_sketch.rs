//! Pins the distinct-count sketch layer (`fdm_core::stats`):
//!
//! * **accuracy** — `estimate_distinct` on non-key attributes stays
//!   within the documented [`DistinctSketch::RELATIVE_ERROR_BOUND`] of
//!   the exact distinct count across the 1k and 20k loads, for both
//!   integer- and string-valued attributes, on relations *and* on
//!   relationship participant positions;
//! * **path identity** — the sketch state produced by the bulk
//!   construction paths (`RelationBuilder`/`from_sorted`,
//!   `RelationshipBuilder`/`RelationshipF::from_sorted`) is
//!   register-identical to the one produced by the equivalent incremental
//!   insert chain (HyperLogLog registers are order-insensitive maxima);
//! * **freshness and monotonicity** — relation mutations invalidate the
//!   lazy sketch cache (freshness by construction), while relationship
//!   sketches survive removals as documented upper bounds whose estimates
//!   clamp to the live entry count.

use fdm_core::{
    estimate_distinct, DistinctSketch, Domain, Participant, RelationBuilder, RelationF,
    RelationshipBuilder, RelationshipF, SharedDomain, TupleF, Value, ValueType,
};
use std::sync::Arc;

const BOUND: f64 = DistinctSketch::RELATIVE_ERROR_BOUND;

fn rel_err(estimate: usize, exact: usize) -> f64 {
    (estimate as f64 - exact as f64).abs() / exact as f64
}

/// `rows` tuples with a string attribute cycling through `distinct`
/// values and an integer attribute cycling through `distinct / 2` values.
fn load(rows: i64, distinct: i64) -> Vec<(Value, Arc<TupleF>)> {
    (0..rows)
        .map(|i| {
            (
                Value::Int(i),
                Arc::new(
                    TupleF::builder("t")
                        .attr("grp", format!("g{}", i % distinct))
                        .attr("bucket", i % (distinct / 2).max(1))
                        .build(),
                ),
            )
        })
        .collect()
}

#[test]
fn estimate_distinct_accuracy_at_1k_and_20k() {
    for (rows, distinct) in [(1_000i64, 100i64), (20_000, 1_337)] {
        let rel = RelationF::from_sorted("t", &["id"], load(rows, distinct));
        // key attribute: exact, not sketched
        assert_eq!(estimate_distinct(&rel, "id"), rows as usize);
        // non-key string attribute: sketched within the documented bound
        let grp = estimate_distinct(&rel, "grp");
        assert!(
            rel_err(grp, distinct as usize) < BOUND,
            "{rows} rows: grp estimate {grp} vs exact {distinct}"
        );
        // non-key integer attribute too
        let exact_buckets = (distinct / 2).max(1) as usize;
        let bucket = estimate_distinct(&rel, "bucket");
        assert!(
            rel_err(bucket, exact_buckets) < BOUND,
            "{rows} rows: bucket estimate {bucket} vs exact {exact_buckets}"
        );
        // estimates are planner input and must be cheap once computed:
        // the second call hits the cached sketches
        assert!(rel.attr_sketches_cached().is_some());
        assert_eq!(estimate_distinct(&rel, "grp"), grp);
    }
}

#[test]
fn relation_sketches_identical_across_bulk_and_incremental_paths() {
    let entries = load(1_000, 100);
    // bulk: from_sorted
    let bulk = RelationF::from_sorted("t", &["id"], entries.clone());
    // bulk: builder
    let mut b = RelationBuilder::new("t", &["id"]);
    for (k, t) in &entries {
        b.push_arc(k.clone(), t.clone());
    }
    let built = b.build().unwrap();
    // incremental: insert loop
    let mut inc = RelationF::new("t", &["id"]);
    for (k, t) in &entries {
        inc = inc.insert_arc(k.clone(), t.clone()).unwrap();
    }
    assert_eq!(bulk.attr_sketches(), built.attr_sketches());
    assert_eq!(bulk.attr_sketches(), inc.attr_sketches());
    // ...and the estimate is clamped by the live row count
    for rel in [&bulk, &built, &inc] {
        assert!(estimate_distinct(rel, "grp") <= rel.len());
    }
}

#[test]
fn relation_mutations_invalidate_the_sketch_cache() {
    let rel = RelationF::from_sorted("t", &["id"], load(500, 50));
    let before = estimate_distinct(&rel, "grp");
    assert!(rel_err(before, 50) < BOUND);
    // deleting the only row of a value must not leave a stale estimate:
    // every mutation constructs a new value with a fresh (empty) cache
    let mut shrunk = rel.clone();
    for i in 0..450i64 {
        shrunk = shrunk.delete(&Value::Int(i)).unwrap();
    }
    assert!(
        shrunk.attr_sketches_cached().is_none(),
        "mutation starts a fresh cache"
    );
    let after = estimate_distinct(&shrunk, "grp");
    assert!(
        rel_err(after, 50) < BOUND,
        "rows 450..500 still cover all 50 groups: estimate {after}"
    );
    // the original snapshot's cache is untouched (persistence)
    assert_eq!(estimate_distinct(&rel, "grp"), before);
}

fn order_participants() -> Vec<Participant> {
    vec![
        Participant::new(
            "customers",
            "cid",
            SharedDomain::new("cid", Domain::Typed(ValueType::Int)),
        ),
        Participant::new(
            "products",
            "pid",
            SharedDomain::new("pid", Domain::Typed(ValueType::Int)),
        ),
    ]
}

/// `n` relationship entries over `n / 20` distinct cids (fan-out 20) and
/// `n` distinct pids, in strictly ascending lexicographic order.
fn rel_entries(n: i64) -> Vec<(Vec<Value>, Arc<TupleF>)> {
    let link = Arc::new(TupleF::builder("order_link").build());
    (0..n)
        .map(|i| (vec![Value::Int(i / 20), Value::Int(i)], link.clone()))
        .collect()
}

#[test]
fn relationship_sketches_identical_across_bulk_and_incremental_paths() {
    let entries = rel_entries(1_000);
    let bulk = RelationshipF::from_sorted("order", order_participants(), entries.clone()).unwrap();
    let mut builder = RelationshipBuilder::new("order", order_participants());
    for (args, attrs) in &entries {
        builder.push_arc(args, attrs.clone()).unwrap();
    }
    let built = builder.build().unwrap();
    let mut inc = RelationshipF::new("order", order_participants());
    for (args, attrs) in &entries {
        inc = inc.insert(args, (**attrs).clone()).unwrap();
    }
    for pos in 0..2 {
        assert_eq!(
            bulk.stats().sketch(pos),
            built.stats().sketch(pos),
            "pos {pos}"
        );
        assert_eq!(
            bulk.stats().sketch(pos),
            inc.stats().sketch(pos),
            "pos {pos}"
        );
    }
}

#[test]
fn relationship_sketch_accuracy_at_1k_and_20k() {
    for n in [1_000i64, 20_000] {
        let order =
            RelationshipF::from_sorted("order", order_participants(), rel_entries(n)).unwrap();
        let stats = order.stats();
        for pos in 0..2 {
            let exact = stats.distinct(pos);
            let est = stats.distinct_estimate(pos);
            assert!(
                rel_err(est, exact) < BOUND,
                "{n} entries, pos {pos}: sketch {est} vs exact {exact}"
            );
        }
    }
}

#[test]
fn relationship_sketches_survive_removes_as_clamped_upper_bounds() {
    let mut order =
        RelationshipF::from_sorted("order", order_participants(), rel_entries(200)).unwrap();
    let full_sketch = order.stats().sketch(0).unwrap().clone();
    for i in 0..195i64 {
        order = order.remove(&[Value::Int(i / 20), Value::Int(i)]).unwrap();
    }
    let stats = order.stats();
    assert_eq!(stats.entries(), 5);
    // the exact count map reversed; the sketch never forgets...
    assert_eq!(stats.distinct(0), 1, "only cid 9 remains");
    assert_eq!(stats.sketch(0), Some(&full_sketch));
    // ...but its estimate clamps to the live entry count
    assert!(stats.distinct_estimate(0) <= stats.entries());
}
