//! Pin tests for the hot-tuple cache's invalidation contract: **a cache
//! entry can never serve a value older than the reader's snapshot
//! version** (`crates/txn/src/cache.rs`). Each test pins one clause of
//! the contract from the outside, through `Store::read_point_versioned`:
//!
//! * **read-your-writes** — a committer immediately re-reading its key
//!   must see its own write, no matter how hot the cache was before the
//!   commit;
//! * **concurrent writer** — under a racing writer that only ever grows
//!   a counter, every cached read must be at least as new as the
//!   reported snapshot version says (newer is allowed — a commit can
//!   land between the version read and the probe — older never);
//! * **post-recovery cold cache** — a recovered store must resume with
//!   an empty cache at the recovered version: nothing cached before the
//!   crash can be trusted, and the first read is a (counted) miss that
//!   serves the recovered tree's value.

use fdm_core::Value;
use fdm_txn::{DurabilityConfig, Store, StoreConfig, SyncPolicy};
use fdm_workload::{commit_serve_write, retail_store_with, RetailConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn retail() -> RetailConfig {
    RetailConfig {
        customers: 100,
        ..RetailConfig::small()
    }
}

fn serving_config() -> StoreConfig {
    StoreConfig {
        hot_cache: Some(64),
        ..StoreConfig::default()
    }
}

fn credit_of(t: &fdm_core::TupleF) -> i64 {
    t.get("credit")
        .and_then(|v| v.as_int("credit"))
        .expect("credit is an int")
}

/// Scratch directory for the recovery test, honoring the CI artifact
/// convention (`FDM_DURABILITY_SCRATCH`): removed only on success, so a
/// failure leaves the exact files behind.
fn scratch(tag: &str) -> std::path::PathBuf {
    let base = std::env::var("FDM_DURABILITY_SCRATCH")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let dir = base.join(format!(
        "fdm-cache-invalidation-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn read_your_writes_through_a_hot_cache() {
    let store = retail_store_with(&retail(), serving_config());
    let key = Value::Int(7);
    // make the entry as hot as possible: cached, re-read, version pinned
    let before = store
        .read_point("customers", &key)
        .expect("customers relation exists")
        .expect("dense cids");
    let before_credit = credit_of(&before);
    for _ in 0..3 {
        store
            .read_point("customers", &key)
            .expect("relation exists");
    }
    for round in 1..=10 {
        commit_serve_write(&store, 7, 5);
        let (version, after) = store
            .read_point_versioned("customers", &key)
            .expect("customers relation exists");
        let after = after.expect("dense cids");
        assert_eq!(
            credit_of(&after),
            before_credit + 5 * round,
            "round {round}: the committer must read its own write back"
        );
        assert_eq!(version, store.version(), "quiescent store: read at head");
    }
    let stats = store.cache_stats().expect("hot cache is on");
    assert!(
        stats.invalidations > 0,
        "commits must evict the written key"
    );
}

/// One writer thread monotonically grows customer 1's credit while
/// reader threads hammer the same key through the cache. For every read,
/// the value must be **at least** as new as the reported version's
/// ground truth in the time-travel history — the cache may serve newer
/// (a commit can land between the version read and the cache probe),
/// never older.
#[test]
fn concurrent_writer_never_yields_a_stale_read() {
    let store = retail_store_with(&retail(), serving_config());
    let key = Value::Int(1);
    let base = credit_of(
        &store
            .read_point("customers", &key)
            .expect("relation exists")
            .expect("dense cids"),
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer_store = Arc::clone(&store);
        let writer_stop = &stop;
        s.spawn(move || {
            for _ in 0..300 {
                commit_serve_write(&writer_store, 1, 1);
            }
            writer_stop.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            let reader_store = Arc::clone(&store);
            let reader_stop = &stop;
            let key = key.clone();
            s.spawn(move || {
                let mut last = base;
                while !reader_stop.load(Ordering::Acquire) {
                    let (version, t) = reader_store
                        .read_point_versioned("customers", &key)
                        .expect("relation exists");
                    let got = credit_of(&t.expect("dense cids"));
                    let floor = credit_of(
                        &reader_store
                            .as_of(version)
                            .expect("within retention")
                            .relation("customers")
                            .expect("relation exists")
                            .lookup(&key)
                            .expect("dense cids"),
                    );
                    assert!(
                        got >= floor,
                        "cached read ({got}) older than its reported version v{version} ({floor})"
                    );
                    assert!(got >= last, "reads went backwards: {got} after {last}");
                    last = got;
                }
            });
        }
    });
    assert_eq!(
        credit_of(
            &store
                .read_point("customers", &key)
                .expect("relation exists")
                .expect("dense cids")
        ),
        base + 300,
        "no lost updates under the racing readers"
    );
}

#[test]
fn recovery_resumes_with_a_cold_cache_at_the_recovered_version() {
    let dir = scratch("recovery");
    let dcfg = || {
        DurabilityConfig::new(&dir)
            .with_sync(SyncPolicy::Always)
            .with_checkpoint_every(None)
    };
    let key = Value::Int(3);
    let committed = {
        let store = Store::create(
            fdm_workload::retail_db(&retail()),
            StoreConfig {
                durability: Some(dcfg()),
                ..serving_config()
            },
        )
        .expect("fresh scratch dir");
        for _ in 0..5 {
            commit_serve_write(&store, 3, 9);
        }
        // warm the cache so the pre-crash process had a hot entry
        let warmed = store
            .read_point("customers", &key)
            .expect("relation exists")
            .expect("dense cids");
        assert!(store.cache_stats().expect("cache on").fills > 0);
        (store.version(), credit_of(&warmed))
    };

    let recovered = Store::open_with(StoreConfig {
        durability: Some(dcfg()),
        ..serving_config()
    })
    .expect("clean shutdown recovers");
    assert_eq!(recovered.version(), committed.0, "recovery replays the WAL");
    let stats = recovered
        .cache_stats()
        .expect("recovered store keeps its cache config");
    assert_eq!(stats.hits + stats.misses, 0, "recovered cache starts empty");
    let (version, t) = recovered
        .read_point_versioned("customers", &key)
        .expect("relation exists");
    assert_eq!(version, committed.0);
    assert_eq!(
        credit_of(&t.expect("dense cids")),
        committed.1,
        "first post-recovery read serves the recovered tree's value"
    );
    let stats = recovered.cache_stats().expect("cache on");
    assert_eq!(stats.misses, 1, "the cold read is a counted miss");
    assert_eq!(stats.fills, 1, "and refills the cache");
    assert!(
        recovered
            .read_point("customers", &key)
            .expect("relation exists")
            .is_some(),
        "second read is served again"
    );
    assert_eq!(recovered.cache_stats().expect("cache on").hits, 1);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
