//! Shared helpers for the integration tests (the tests themselves live in
//! `tests/tests/*.rs`).
