//! Shared helpers for the integration tests (the tests themselves live in
//! `tests/tests/*.rs`).

use fdm_core::{DatabaseF, RelationF, Value};
use fdm_fql::MaintainedView;

/// A relation reduced to its canonical content: `(key, data-key)` pairs
/// in key order. Two relations with equal canonical rows hold the same
/// data under the same keys, whatever their names or in-memory layout.
pub fn canonical_rows(rel: &RelationF) -> Vec<(Value, Value)> {
    rel.tuples()
        .expect("operator outputs are unique relations")
        .into_iter()
        .map(|(k, t)| (k, t.data_key().expect("operator outputs carry no closures")))
        .collect()
}

/// The differential oracle for incremental view maintenance: the
/// maintained result must equal re-running the view's (already
/// optimized) plan from scratch against `db` — same canonical keys,
/// same tuple data, in the same order. `context` labels the failure.
pub fn assert_view_equiv(view: &MaintainedView, db: &DatabaseF, context: &str) {
    let fresh = view
        .plan()
        .clone()
        .eval(db)
        .unwrap_or_else(|e| panic!("{context}: recompute oracle failed: {e}"));
    assert_eq!(
        canonical_rows(&view.relation()),
        canonical_rows(&fresh),
        "{context}: maintained view diverged from a from-scratch recompute"
    );
}
